package vec

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestSparseSetAndDense(t *testing.T) {
	s := NewSparse(10)
	s.Set(3, 1.5)
	s.Set(7, -2)
	s.Set(3, 4) // overwrite
	d := s.Dense()
	want := make([]float64, 10)
	want[3] = 4
	want[7] = -2
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("Dense() = %v, want %v", d, want)
	}
	if s.NNZ() != 2 {
		t.Fatalf("NNZ() = %d, want 2", s.NNZ())
	}
}

func TestSparseSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set out of range did not panic")
		}
	}()
	NewSparse(5).Set(5, 1)
}

func TestSparseNormalize(t *testing.T) {
	s := NewSparse(10)
	s.Entries = []Entry{{5, 1}, {2, 3}, {5, 2}, {8, 0}}
	s.Normalize()
	want := []Entry{{2, 3}, {5, 3}}
	if !reflect.DeepEqual(s.Entries, want) {
		t.Fatalf("Normalize gave %v, want %v", s.Entries, want)
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	x := []float64{0, 1, 0, -2.5, 0, 3}
	s := FromDense(x)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", s.NNZ())
	}
	if !reflect.DeepEqual(s.Dense(), x) {
		t.Fatalf("round trip failed: %v", s.Dense())
	}
}

func TestSparseClone(t *testing.T) {
	s := FromDense([]float64{1, 0, 2})
	c := s.Clone()
	c.Entries[0].Value = 99
	if s.Entries[0].Value == 99 {
		t.Fatal("Clone did not deep-copy entries")
	}
}

func TestAddSubScale(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Add(x, y); !reflect.DeepEqual(got, []float64{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(y, x); !reflect.DeepEqual(got, []float64{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(2, x); !reflect.DeepEqual(got, []float64{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	x := []float64{1, 2, 3}
	AddInPlace(x, []float64{1, 1, 1})
	if !reflect.DeepEqual(x, []float64{2, 3, 4}) {
		t.Errorf("AddInPlace = %v", x)
	}
	SubInPlace(x, []float64{1, 1, 1})
	if !reflect.DeepEqual(x, []float64{1, 2, 3}) {
		t.Errorf("SubInPlace = %v", x)
	}
	ScaleInPlace(3, x)
	if !reflect.DeepEqual(x, []float64{3, 6, 9}) {
		t.Errorf("ScaleInPlace = %v", x)
	}
	y := []float64{0, 0, 0}
	AXPY(2, []float64{1, 2, 3}, y)
	if !reflect.DeepEqual(y, []float64{2, 4, 6}) {
		t.Errorf("AXPY = %v", y)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths did not panic")
		}
	}()
	Add([]float64{1}, []float64{1, 2})
}

func TestDotAndNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Dot(x, x); got != 25 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2(x); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := Norm1(x); got != 7 {
		t.Errorf("Norm1 = %v", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %v", got)
	}
	if got := NNZ([]float64{0, 1, 0, 2}); got != 2 {
		t.Errorf("NNZ = %v", got)
	}
}

func TestTopK(t *testing.T) {
	x := []float64{1, -5, 3, 0, 5}
	got := TopK(x, 2)
	// |x[1]| = 5 and |x[4]| = 5 tie; lower index wins.
	want := []int{1, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	if got := TopK(x, 0); got != nil {
		t.Errorf("TopK(x,0) = %v, want nil", got)
	}
	if got := TopK(x, 100); len(got) != len(x) {
		t.Errorf("TopK with k>len returned %d items", len(got))
	}
}

func TestHardThreshold(t *testing.T) {
	x := []float64{1, -5, 3, 0, 4}
	got := HardThreshold(x, 2)
	want := []float64{0, -5, 0, 0, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HardThreshold = %v, want %v", got, want)
	}
}

func TestHeadTailSplit(t *testing.T) {
	x := []float64{3, 0, 4, 1}
	head, tail := HeadTailSplit(x, 2)
	if math.Abs(head-5) > 1e-12 {
		t.Errorf("head = %v, want 5", head)
	}
	if math.Abs(tail-1) > 1e-12 {
		t.Errorf("tail = %v, want 1", tail)
	}
}

func TestRelativeError(t *testing.T) {
	x := []float64{3, 4}
	y := []float64{3, 4}
	if RelativeError(x, y) != 0 {
		t.Error("identical vectors should have zero relative error")
	}
	if got := RelativeError(x, []float64{0, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("RelativeError vs zero = %v, want 1", got)
	}
	if got := RelativeError([]float64{0, 0}, []float64{0, 3}); got != 3 {
		t.Errorf("RelativeError with zero reference = %v, want 3", got)
	}
}

func TestSupport(t *testing.T) {
	x := []float64{0, 1, 0, 2}
	if got := Support(x); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("Support = %v", got)
	}
	if !SupportEqual(x, []float64{0, 9, 0, -1}) {
		t.Error("SupportEqual should be true for same support")
	}
	if SupportEqual(x, []float64{1, 1, 0, 2}) {
		t.Error("SupportEqual should be false for different support")
	}
	if SupportEqual(x, []float64{0, 1}) {
		t.Error("SupportEqual should be false for different lengths")
	}
}

func TestComplexHelpers(t *testing.T) {
	x := []complex128{3, 4i}
	if got := CNorm2(x); math.Abs(got-5) > 1e-12 {
		t.Errorf("CNorm2 = %v", got)
	}
	y := CClone(x)
	y[0] = 0
	if x[0] == 0 {
		t.Error("CClone did not copy")
	}
	d := CSub(x, x)
	if CNorm2(d) != 0 {
		t.Error("CSub(x,x) not zero")
	}
	if got := CRelativeError(x, x); got != 0 {
		t.Errorf("CRelativeError = %v", got)
	}
	if got := CRelativeError([]complex128{0}, []complex128{2}); got != 2 {
		t.Errorf("CRelativeError with zero reference = %v", got)
	}
}

func TestCTopKAndThreshold(t *testing.T) {
	x := []complex128{1, 5i, 2 + 2i, 0}
	got := CTopK(x, 2)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("CTopK = %v", got)
	}
	th := CHardThreshold(x, 1)
	if th[1] != 5i || th[0] != 0 || th[2] != 0 {
		t.Fatalf("CHardThreshold = %v", th)
	}
	if CTopK(x, 0) != nil {
		t.Error("CTopK with k=0 should be nil")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2},
		{[]float64{-1, -5, 10}, -1},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Median of empty slice did not panic")
		}
	}()
	Median(nil)
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if !reflect.DeepEqual(in, []float64{3, 1, 2}) {
		t.Fatal("Median mutated its input")
	}
}

// Property: HardThreshold(x,k) has at most k non-zeros and its error is
// no larger than keeping any other k entries (we check versus keeping the
// first k entries).
func TestHardThresholdOptimalityProperty(t *testing.T) {
	r := xrand.New(7)
	f := func(seed uint64) bool {
		rr := xrand.New(seed)
		n := 20 + rr.Intn(30)
		k := rr.Intn(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		best := HardThreshold(x, k)
		if NNZ(best) > k {
			return false
		}
		// Competitor: keep first k entries.
		comp := make([]float64, n)
		copy(comp, x[:k])
		return Norm2(Sub(x, best)) <= Norm2(Sub(x, comp))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Dot(x,x) == Norm2(x)^2.
func TestNormDotConsistencyProperty(t *testing.T) {
	f := func(raw []float64) bool {
		// Filter out NaN/Inf from quick's generator.
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				x = append(x, v)
			}
		}
		n2 := Norm2(x)
		return math.Abs(Dot(x, x)-n2*n2) <= 1e-6*(1+n2*n2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
