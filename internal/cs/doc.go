// Package cs implements the compressed-sensing algorithms discussed in
// Section 2 of the survey: recovery of a k-sparse approximation x' of a
// vector x from the linear measurements y = A·x.
//
// Two families of measurement matrices are supported, matching the survey's
// contrast:
//
//   - sparse hashing matrices (core.HashMatrix, one non-zero per column per
//     hash repetition), recovered by the Count-Min / Count-Sketch estimators
//     of [CM06], by Sparse Matching Pursuit [BIR08], and by iterative hard
//     thresholding driven entirely by sparse matrix-vector products;
//   - dense random matrices (mat.Dense Gaussian/Bernoulli), recovered by
//     Orthogonal Matching Pursuit, Iterative Hard Thresholding, and ISTA
//     (an l1 / basis-pursuit-denoising proxy).
//
// Every algorithm implements the Recoverer interface so the experiment
// harness can sweep (n, m, k) grids uniformly. The package also provides the
// synthetic signal generators used by the experiments (exactly sparse,
// noisy sparse, power-law decaying).
package cs
