package cs

import (
	"repro/internal/linalg"
	"repro/internal/mat"
	"repro/internal/vec"
)

// OMP is Orthogonal Matching Pursuit: the classic greedy recovery algorithm
// for dense measurement matrices. At each of k iterations it selects the
// column most correlated with the current residual, then re-solves least
// squares on the accumulated support. Its per-iteration cost is dominated by
// the O(nm) correlation step, which is exactly the dense-matrix cost the
// survey contrasts with sparse hashing matrices.
type OMP struct {
	// MaxIter bounds the number of atoms selected; 0 means select k atoms.
	MaxIter int
	// Tol stops early when the residual norm falls below Tol.
	Tol float64
}

// Name identifies the algorithm.
func (OMP) Name() string { return "omp" }

// Recover runs OMP for (up to) k iterations.
func (o OMP) Recover(a mat.Operator, y []float64, k int) ([]float64, error) {
	if err := checkMeasurements(a, y); err != nil {
		return nil, err
	}
	_, n := a.Dims()
	maxIter := o.MaxIter
	if maxIter <= 0 || maxIter > k {
		maxIter = k
	}
	tol := o.Tol
	if tol <= 0 {
		tol = 1e-9 * (1 + vec.Norm2(y))
	}
	residual := vec.Clone(y)
	support := make([]int, 0, maxIter)
	inSupport := make(map[int]bool, maxIter)
	x := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		if vec.Norm2(residual) <= tol {
			break
		}
		// Correlation of every column with the residual: A^T r.
		corr := a.TMulVec(residual)
		best, bestVal := -1, 0.0
		for j, c := range corr {
			if inSupport[j] {
				continue
			}
			if abs := absFloat(c); abs > bestVal {
				best, bestVal = j, abs
			}
		}
		if best < 0 || bestVal == 0 {
			break
		}
		support = append(support, best)
		inSupport[best] = true
		sol, err := linalg.LeastSquaresOnSupport(a, y, support)
		if err != nil {
			return nil, err
		}
		x = sol
		residual = vec.Sub(y, a.MulVec(x))
	}
	return x, nil
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
