package cs

import (
	"math"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// RandomSparseSignal returns an exactly k-sparse vector of dimension n whose
// non-zero entries are ±amplitude times a uniform value in [0.5, 1.5], on a
// uniformly random support. The slight amplitude spread avoids degenerate
// ties in top-k selection.
func RandomSparseSignal(r *xrand.Rand, n, k int, amplitude float64) []float64 {
	if k > n {
		k = n
	}
	x := make([]float64, n)
	for _, i := range r.Sample(n, k) {
		mag := amplitude * (0.5 + r.Float64())
		x[i] = mag * r.Rademacher()
	}
	return x
}

// NonNegativeSparseSignal returns an exactly k-sparse vector with positive
// entries only — the frequency-vector case where Count-Min recovery applies.
func NonNegativeSparseSignal(r *xrand.Rand, n, k int, amplitude float64) []float64 {
	if k > n {
		k = n
	}
	x := make([]float64, n)
	for _, i := range r.Sample(n, k) {
		x[i] = amplitude * (0.5 + r.Float64())
	}
	return x
}

// NoisySparseSignal returns a k-sparse signal plus dense Gaussian noise with
// the given standard deviation per coordinate, along with the noiseless
// signal (the recovery target).
func NoisySparseSignal(r *xrand.Rand, n, k int, amplitude, noiseStd float64) (noisy, clean []float64) {
	clean = RandomSparseSignal(r, n, k, amplitude)
	noisy = vec.Clone(clean)
	for i := range noisy {
		noisy[i] += noiseStd * r.NormFloat64()
	}
	return noisy, clean
}

// PowerLawSignal returns a compressible (not exactly sparse) signal whose
// sorted coefficient magnitudes decay as i^{-decay}, with random signs and a
// random permutation of positions. Such signals are the realistic signal
// model in imaging applications.
func PowerLawSignal(r *xrand.Rand, n int, decay float64) []float64 {
	x := make([]float64, n)
	perm := r.Perm(n)
	for rank := 0; rank < n; rank++ {
		mag := math.Pow(float64(rank+1), -decay)
		x[perm[rank]] = mag * r.Rademacher()
	}
	return x
}

// SupportRecovered reports whether the top-k support of the estimate matches
// the true support of an exactly k-sparse signal.
func SupportRecovered(truth, estimate []float64) bool {
	k := vec.NNZ(truth)
	est := vec.HardThreshold(estimate, k)
	trueSupport := vec.Support(truth)
	estSupport := vec.Support(est)
	if len(trueSupport) != len(estSupport) {
		return false
	}
	for i := range trueSupport {
		if trueSupport[i] != estSupport[i] {
			return false
		}
	}
	return true
}

// RecoverySuccessful reports whether the estimate recovers the truth to the
// given relative l2 tolerance.
func RecoverySuccessful(truth, estimate []float64, tol float64) bool {
	return vec.RelativeError(truth, estimate) <= tol
}
