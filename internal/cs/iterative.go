package cs

import (
	"math"

	"repro/internal/mat"
	"repro/internal/vec"
)

// IHT is Iterative Hard Thresholding: x <- H_k(x + mu * A^T (y - A x)).
// With dense sub-Gaussian matrices it matches the optimal measurement bound;
// with sparse hashing matrices each iteration costs O(nnz) which is the
// "faster algorithms" claim of the survey.
//
// When Step is zero the normalized-IHT adaptive step of Blumensath and
// Davies is used: mu = ||g_S||^2 / ||A g_S||^2 with S the union of the
// current support and the top-k entries of the gradient. The adaptive step
// needs no knowledge of ||A||_2 and converges for both dense and sparse
// measurement matrices.
type IHT struct {
	// Iters is the number of iterations (default 50).
	Iters int
	// Step is a fixed gradient step size mu; 0 selects the adaptive step.
	Step float64
}

// Name identifies the algorithm.
func (IHT) Name() string { return "iht" }

// Recover runs iterative hard thresholding.
func (ih IHT) Recover(a mat.Operator, y []float64, k int) ([]float64, error) {
	if err := checkMeasurements(a, y); err != nil {
		return nil, err
	}
	_, n := a.Dims()
	iters := ih.Iters
	if iters <= 0 {
		iters = 50
	}
	x := make([]float64, n)
	bestX := vec.Clone(x)
	bestResid := vec.Norm2(y)
	for it := 0; it < iters; it++ {
		residual := vec.Sub(y, a.MulVec(x))
		rn := vec.Norm2(residual)
		if rn < bestResid {
			bestResid = rn
			bestX = vec.Clone(x)
		}
		if rn <= 1e-12*(1+vec.Norm2(y)) {
			break
		}
		grad := a.TMulVec(residual)
		step := ih.Step
		if step == 0 {
			step = adaptiveStep(a, x, grad, k)
		}
		vec.AXPY(step, grad, x)
		x = vec.HardThreshold(x, k)
	}
	// Return the best iterate seen (IHT can oscillate when the step is large).
	final := vec.Sub(y, a.MulVec(x))
	if vec.Norm2(final) <= bestResid {
		return x, nil
	}
	return bestX, nil
}

// adaptiveStep computes the normalized-IHT step: restrict the gradient to
// the union of the current support and the k largest gradient entries, and
// return ||g_S||^2 / ||A g_S||^2.
func adaptiveStep(a mat.Operator, x, grad []float64, k int) float64 {
	support := map[int]bool{}
	for _, j := range vec.Support(x) {
		support[j] = true
	}
	for _, j := range vec.TopK(grad, k) {
		support[j] = true
	}
	gS := make([]float64, len(grad))
	for j := range support {
		gS[j] = grad[j]
	}
	num := vec.Dot(gS, gS)
	if num == 0 {
		return 1
	}
	agS := a.MulVec(gS)
	den := vec.Dot(agS, agS)
	if den == 0 {
		return 1
	}
	return num / den
}

// defaultStep picks a step size appropriate for the operator family: for
// hashing matrices with d rows per column, A^T A has diagonal entries d, so
// 1/d is the natural normalization; for everything else the step is set just
// below 1/||A||_2^2 (estimated by a short deterministic power iteration),
// which guarantees that gradient steps on 0.5||Ax-y||^2 do not diverge.
func defaultStep(a mat.Operator) float64 {
	if op, ok := a.(HashOperator); ok {
		return 1 / float64(op.RowsPerColumn())
	}
	s2 := spectralNormSquared(a)
	if s2 <= 0 {
		return 1
	}
	return 0.95 / s2
}

// spectralNormSquared estimates ||A||_2^2 with a short power iteration
// started from a deterministic vector, so recovery stays reproducible.
func spectralNormSquared(a mat.Operator) float64 {
	_, n := a.Dims()
	v := make([]float64, n)
	for i := range v {
		// Deterministic, sign-alternating start avoids being orthogonal to
		// the dominant singular vector in pathological cases.
		if i%2 == 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
	norm := vec.Norm2(v)
	if norm == 0 {
		return 0
	}
	vec.ScaleInPlace(1/norm, v)
	var lambda float64
	for it := 0; it < 30; it++ {
		w := a.TMulVec(a.MulVec(v))
		lambda = vec.Norm2(w)
		if lambda == 0 {
			return 0
		}
		vec.ScaleInPlace(1/lambda, w)
		v = w
	}
	return lambda
}

// ISTA is iterative soft thresholding for the LASSO / basis-pursuit-denoising
// problem min_x 0.5||Ax-y||^2 + lambda ||x||_1 — the l1-relaxation approach of
// [CRT06, Don06] that the hashing-based algorithms are compared against. The
// final iterate is hard-thresholded to k entries so all recoverers report
// comparable k-sparse outputs.
type ISTA struct {
	// Iters is the number of iterations (default 200).
	Iters int
	// Lambda is the l1 penalty; 0 selects a heuristic based on ||A^T y||_inf.
	Lambda float64
	// Step is the gradient step; 0 selects the same heuristic as IHT.
	Step float64
}

// Name identifies the algorithm.
func (ISTA) Name() string { return "ista-l1" }

// Recover runs ISTA followed by a hard threshold to k entries.
func (is ISTA) Recover(a mat.Operator, y []float64, k int) ([]float64, error) {
	if err := checkMeasurements(a, y); err != nil {
		return nil, err
	}
	_, n := a.Dims()
	iters := is.Iters
	if iters <= 0 {
		iters = 200
	}
	step := is.Step
	if step == 0 {
		step = defaultStep(a)
	}
	lambda := is.Lambda
	if lambda == 0 {
		corr := a.TMulVec(y)
		lambda = 0.01 * vec.NormInf(corr)
	}
	x := make([]float64, n)
	for it := 0; it < iters; it++ {
		residual := vec.Sub(y, a.MulVec(x))
		grad := a.TMulVec(residual)
		vec.AXPY(step, grad, x)
		softThresholdInPlace(x, lambda*step)
	}
	return vec.HardThreshold(x, k), nil
}

func softThresholdInPlace(x []float64, t float64) {
	for i, v := range x {
		switch {
		case v > t:
			x[i] = v - t
		case v < -t:
			x[i] = v + t
		default:
			x[i] = 0
		}
	}
}

// SMP is Sparse Matching Pursuit [BIR08] specialized to hashing matrices: in
// each iteration the residual sketch y - A·x is decoded with the sketch
// point estimator into a 2k-sparse update, which is added to the iterate and
// the result re-thresholded to k entries. Every iteration touches only the
// sketch, so the per-iteration cost is O(n·d) for d rows per column.
type SMP struct {
	// Iters is the number of refinement iterations (default 20).
	Iters int
}

// Name identifies the algorithm.
func (SMP) Name() string { return "smp" }

// Recover runs sparse matching pursuit; the operator must be a hashing
// operator (signed or unsigned).
func (s SMP) Recover(a mat.Operator, y []float64, k int) ([]float64, error) {
	h, ok := a.(HashOperator)
	if !ok {
		return nil, ErrUnsupportedOperator
	}
	if err := checkMeasurements(a, y); err != nil {
		return nil, err
	}
	iters := s.Iters
	if iters <= 0 {
		iters = 20
	}
	_, n := h.Dims()
	x := make([]float64, n)
	bestX := vec.Clone(x)
	bestResid := math.Inf(1)
	for it := 0; it < iters; it++ {
		residual := vec.Sub(y, h.MulVec(x))
		rn := vec.Norm2(residual)
		if rn < bestResid {
			bestResid = rn
			bestX = vec.Clone(x)
		}
		if rn <= 1e-12*(1+vec.Norm2(y)) {
			break
		}
		// Decode the residual sketch into a 2k-sparse correction.
		update := vec.HardThreshold(estimateAll(h, residual), 2*k)
		vec.AddInPlace(x, update)
		x = vec.HardThreshold(x, k)
	}
	final := vec.Sub(y, h.MulVec(x))
	if vec.Norm2(final) <= bestResid {
		return x, nil
	}
	return bestX, nil
}
