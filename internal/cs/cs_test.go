package cs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestRandomSparseSignal(t *testing.T) {
	r := xrand.New(1)
	x := RandomSparseSignal(r, 100, 10, 5)
	if vec.NNZ(x) != 10 {
		t.Fatalf("NNZ = %d, want 10", vec.NNZ(x))
	}
	for _, v := range x {
		if v != 0 && (math.Abs(v) < 2.5 || math.Abs(v) > 7.5) {
			t.Fatalf("entry %v outside expected magnitude range", v)
		}
	}
	// k > n clamps.
	if vec.NNZ(RandomSparseSignal(r, 5, 10, 1)) != 5 {
		t.Error("k > n should clamp to n")
	}
}

func TestNonNegativeSparseSignal(t *testing.T) {
	r := xrand.New(2)
	x := NonNegativeSparseSignal(r, 50, 8, 3)
	if vec.NNZ(x) != 8 {
		t.Fatalf("NNZ = %d", vec.NNZ(x))
	}
	for _, v := range x {
		if v < 0 {
			t.Fatal("negative entry in non-negative signal")
		}
	}
}

func TestNoisySparseSignal(t *testing.T) {
	r := xrand.New(3)
	noisy, clean := NoisySparseSignal(r, 200, 5, 10, 0.1)
	if vec.NNZ(clean) != 5 {
		t.Fatalf("clean NNZ = %d", vec.NNZ(clean))
	}
	diff := vec.Norm2(vec.Sub(noisy, clean))
	if diff == 0 {
		t.Fatal("noise was not added")
	}
	if diff > 0.1*math.Sqrt(200)*3 {
		t.Fatalf("noise level %v implausibly high", diff)
	}
}

func TestPowerLawSignal(t *testing.T) {
	r := xrand.New(4)
	x := PowerLawSignal(r, 1000, 1.5)
	// Compressible: top 50 coefficients should hold most of the energy.
	head, tail := vec.HeadTailSplit(x, 50)
	if tail > head {
		t.Fatalf("power-law signal not compressible: head %v tail %v", head, tail)
	}
}

func TestSupportAndSuccessHelpers(t *testing.T) {
	truth := []float64{0, 3, 0, -2, 0}
	good := []float64{0.01, 2.9, 0.005, -1.8, 0}
	if !SupportRecovered(truth, good) {
		t.Error("SupportRecovered should accept matching top-k support")
	}
	bad := []float64{5, 0.1, 0, -2, 0}
	if SupportRecovered(truth, bad) {
		t.Error("SupportRecovered should reject wrong support")
	}
	if !RecoverySuccessful(truth, []float64{0, 3, 0, -2, 0}, 1e-9) {
		t.Error("exact recovery should be successful")
	}
	if RecoverySuccessful(truth, []float64{0, 0, 0, 0, 0}, 0.1) {
		t.Error("zero estimate should not be successful")
	}
}

// ---- exact recovery tests: every algorithm on its natural matrix family ----

func TestSketchDecodeNonNegativeCountMin(t *testing.T) {
	r := xrand.New(10)
	n, k := 2000, 10
	h := core.NewHashMatrix(r, n, 16*k, 5) // unsigned: Count-Min style
	x := NonNegativeSparseSignal(r, n, k, 10)
	y := h.MulVec(x)
	xhat, err := SketchDecode{}.Recover(h, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if !SupportRecovered(x, xhat) {
		t.Fatal("Count-Min sketch decode missed the support")
	}
	if vec.RelativeError(x, xhat) > 0.2 {
		t.Fatalf("relative error %v too high", vec.RelativeError(x, xhat))
	}
}

func TestSketchDecodeSignedCountSketch(t *testing.T) {
	r := xrand.New(11)
	n, k := 2000, 10
	h := core.NewHashMatrix(r, n, 20*k, 7, core.WithSigns())
	x := RandomSparseSignal(r, n, k, 10)
	y := h.MulVec(x)
	xhat, err := SketchDecode{Debias: true}.Recover(h, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if vec.RelativeError(x, xhat) > 0.05 {
		t.Fatalf("relative error %v too high", vec.RelativeError(x, xhat))
	}
	if (SketchDecode{Debias: true}).Name() == (SketchDecode{}).Name() {
		t.Error("debias variant should have a distinct name")
	}
}

func TestSketchDecodeRejectsDenseOperator(t *testing.T) {
	r := xrand.New(12)
	a := mat.NewGaussian(r, 20, 50)
	if _, err := (SketchDecode{}).Recover(a, make([]float64, 20), 3); err != ErrUnsupportedOperator {
		t.Fatalf("expected ErrUnsupportedOperator, got %v", err)
	}
	if _, err := (SMP{}).Recover(a, make([]float64, 20), 3); err != ErrUnsupportedOperator {
		t.Fatalf("expected ErrUnsupportedOperator, got %v", err)
	}
}

func TestOMPExactRecoveryGaussian(t *testing.T) {
	r := xrand.New(13)
	n, m, k := 400, 100, 8
	a := mat.NewGaussian(r, m, n)
	x := RandomSparseSignal(r, n, k, 5)
	y := a.MulVec(x)
	xhat, err := OMP{}.Recover(a, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if vec.RelativeError(x, xhat) > 1e-6 {
		t.Fatalf("OMP relative error %v", vec.RelativeError(x, xhat))
	}
}

func TestOMPStopsEarlyOnZeroResidual(t *testing.T) {
	r := xrand.New(14)
	a := mat.NewGaussian(r, 50, 100)
	x := RandomSparseSignal(r, 100, 3, 5)
	y := a.MulVec(x)
	// Allow up to 20 atoms but it should stop after about 3.
	xhat, err := OMP{MaxIter: 20}.Recover(a, y, 20)
	if err != nil {
		t.Fatal(err)
	}
	if vec.NNZ(xhat) > 6 {
		t.Fatalf("OMP used %d atoms for a 3-sparse consistent system", vec.NNZ(xhat))
	}
}

func TestIHTExactRecoveryGaussian(t *testing.T) {
	r := xrand.New(15)
	n, m, k := 400, 120, 8
	a := mat.NewGaussian(r, m, n)
	x := RandomSparseSignal(r, n, k, 5)
	y := a.MulVec(x)
	xhat, err := IHT{Iters: 300}.Recover(a, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if vec.RelativeError(x, xhat) > 1e-3 {
		t.Fatalf("IHT relative error %v", vec.RelativeError(x, xhat))
	}
}

func TestIHTOnSparseHashingMatrix(t *testing.T) {
	r := xrand.New(16)
	n, k := 1000, 8
	h := core.NewHashMatrix(r, n, 10*k, 6, core.WithSigns())
	x := RandomSparseSignal(r, n, k, 5)
	y := h.MulVec(x)
	xhat, err := IHT{Iters: 200}.Recover(h, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if vec.RelativeError(x, xhat) > 1e-3 {
		t.Fatalf("IHT-on-sparse relative error %v", vec.RelativeError(x, xhat))
	}
}

func TestISTARecoversApproximately(t *testing.T) {
	r := xrand.New(17)
	n, m, k := 300, 120, 6
	a := mat.NewGaussian(r, m, n)
	x := RandomSparseSignal(r, n, k, 5)
	y := a.MulVec(x)
	xhat, err := ISTA{Iters: 500}.Recover(a, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if !SupportRecovered(x, xhat) {
		t.Fatal("ISTA missed the support")
	}
	if vec.RelativeError(x, xhat) > 0.15 {
		t.Fatalf("ISTA relative error %v", vec.RelativeError(x, xhat))
	}
}

func TestSMPExactRecovery(t *testing.T) {
	r := xrand.New(18)
	n, k := 2000, 10
	h := core.NewHashMatrix(r, n, 10*k, 5, core.WithSigns())
	x := RandomSparseSignal(r, n, k, 5)
	y := h.MulVec(x)
	xhat, err := SMP{Iters: 30}.Recover(h, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if vec.RelativeError(x, xhat) > 1e-3 {
		t.Fatalf("SMP relative error %v", vec.RelativeError(x, xhat))
	}
}

func TestRecoverersRejectBadMeasurementLength(t *testing.T) {
	r := xrand.New(19)
	h := core.NewHashMatrix(r, 100, 20, 3)
	a := mat.NewGaussian(r, 20, 100)
	recs := []Recoverer{SketchDecode{}, SMP{}, OMP{}, IHT{}, ISTA{}}
	for _, rec := range recs {
		var op mat.Operator = a
		if rec.Name() == "sketch-decode" || rec.Name() == "smp" {
			op = h
		}
		if _, err := rec.Recover(op, make([]float64, 7), 3); err == nil {
			t.Errorf("%s accepted wrong measurement length", rec.Name())
		}
	}
}

func TestRecovererNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, rec := range []Recoverer{SketchDecode{}, SketchDecode{Debias: true}, SMP{}, OMP{}, IHT{}, ISTA{}} {
		if names[rec.Name()] {
			t.Fatalf("duplicate recoverer name %q", rec.Name())
		}
		names[rec.Name()] = true
	}
}

func TestNoisyRecoveryDegradesGracefully(t *testing.T) {
	// With measurement noise, recovery error should be bounded by a modest
	// multiple of the noise level rather than exploding.
	r := xrand.New(20)
	n, k := 1000, 5
	h := core.NewHashMatrix(r, n, 20*k, 5, core.WithSigns())
	x := RandomSparseSignal(r, n, k, 10)
	y := h.MulVec(x)
	noise := make([]float64, len(y))
	for i := range noise {
		noise[i] = 0.05 * r.NormFloat64()
	}
	yNoisy := vec.Add(y, noise)
	xhat, err := SMP{Iters: 30}.Recover(h, yNoisy, k)
	if err != nil {
		t.Fatal(err)
	}
	if vec.RelativeError(x, xhat) > 0.1 {
		t.Fatalf("noisy recovery error %v too large", vec.RelativeError(x, xhat))
	}
}

// Property: for random exactly-sparse non-negative signals measured with an
// unsigned hashing matrix, sketch decoding never reports negative entries
// larger than zero on the true support complement... more simply: the
// Count-Min style estimate of every true coordinate is an overestimate.
func TestCountMinEstimateOverestimatesProperty(t *testing.T) {
	r := xrand.New(21)
	h := core.NewHashMatrix(r, 500, 64, 4)
	f := func(seed uint64) bool {
		rr := xrand.New(seed)
		x := NonNegativeSparseSignal(rr, 500, 8, 5)
		y := h.MulVec(x)
		est := estimateAll(h, y)
		for j, v := range x {
			if v > 0 && est[j] < v-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
