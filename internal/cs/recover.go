package cs

import (
	"errors"
	"fmt"

	"repro/internal/linalg"
	"repro/internal/mat"
	"repro/internal/vec"
)

// Recoverer recovers a k-sparse approximation of x from measurements
// y = A·x. Implementations may place requirements on the operator type (the
// sketch-decoding algorithms need the hashing structure of a HashOperator);
// they return ErrUnsupportedOperator when given an operator they cannot use.
type Recoverer interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Recover returns an estimate of x with (approximately) k non-zeros.
	Recover(a mat.Operator, y []float64, k int) ([]float64, error)
}

// HashOperator is the structural interface the sketch-decoding recoverers
// need: a linear operator built from d hash functions, one measurement block
// per hash row. core.HashMatrix satisfies it, and so does any live sketch
// snapshot that exposes its bucket/sign structure (see engine.Measurement),
// which lets recovery run directly over server counters without copying them
// into a matrix.
type HashOperator interface {
	mat.Operator
	// RowsPerColumn reports the number of hash rows d (non-zeros per column).
	RowsPerColumn() int
	// Signed reports whether entries carry ±1 signs (Count-Sketch family)
	// rather than all-ones (Count-Min family).
	Signed() bool
	// Entry returns the measurement row index and ±1 coefficient of column j
	// in hash block b, for b in [0, RowsPerColumn()).
	Entry(block int, j uint64) (row int, val float64)
}

// ErrUnsupportedOperator is returned when a recovery algorithm is given a
// measurement operator it cannot decode (e.g. sketch decoding on a dense
// Gaussian matrix).
var ErrUnsupportedOperator = errors.New("cs: operator type not supported by this recoverer")

// checkMeasurements validates the y length against the operator.
func checkMeasurements(a mat.Operator, y []float64) error {
	m, _ := a.Dims()
	if len(y) != m {
		return fmt.Errorf("cs: measurement vector has length %d, operator has %d rows", len(y), m)
	}
	return nil
}

// SketchDecode is the [CM06]-style recovery for hashing matrices: estimate
// every coordinate with the sketch estimator (min for unsigned Count-Min
// matrices, median for signed Count-Sketch matrices), then keep the top k.
// An optional least-squares debias step on the recovered support removes the
// collision bias of the raw estimates.
type SketchDecode struct {
	// Debias enables a restricted least-squares solve on the selected support.
	Debias bool
}

// Name identifies the algorithm.
func (s SketchDecode) Name() string {
	if s.Debias {
		return "sketch-decode+ls"
	}
	return "sketch-decode"
}

// Recover estimates x from y using the hashing structure of the operator.
func (s SketchDecode) Recover(a mat.Operator, y []float64, k int) ([]float64, error) {
	h, ok := a.(HashOperator)
	if !ok {
		return nil, ErrUnsupportedOperator
	}
	if err := checkMeasurements(a, y); err != nil {
		return nil, err
	}
	// Point-estimate every coordinate from the measurement vector. This is
	// the O(n · rowsPerColumn) decoding pass the survey credits with the
	// O(n log n) total recovery time.
	estimates := estimateAll(h, y)
	xhat := vec.HardThreshold(estimates, k)
	if !s.Debias {
		return xhat, nil
	}
	support := vec.TopK(estimates, k)
	debiased, err := linalg.LeastSquaresOnSupport(h, y, support)
	if err != nil {
		// Fall back to the raw estimates rather than failing the experiment.
		return xhat, nil
	}
	return debiased, nil
}

// estimateAll computes the sketch point estimate of every coordinate given an
// arbitrary measurement vector y (not necessarily the operator's own streaming
// state).
func estimateAll(h HashOperator, y []float64) []float64 {
	_, n := h.Dims()
	out := make([]float64, n)
	// Reuse the HashMatrix estimator by temporarily viewing y as the
	// measurement state: estimate coordinate j from y restricted to the
	// buckets of j. We re-implement the estimator here to avoid mutating h.
	rowsPer := h.RowsPerColumn()
	ests := make([]float64, rowsPer)
	for j := 0; j < n; j++ {
		for b := 0; b < rowsPer; b++ {
			row, val := h.Entry(b, uint64(j))
			ests[b] = val * y[row]
		}
		if h.Signed() {
			out[j] = vec.Median(ests)
		} else {
			min := ests[0]
			for _, v := range ests[1:] {
				if v < min {
					min = v
				}
			}
			out[j] = min
		}
	}
	return out
}
