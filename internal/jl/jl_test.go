package jl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/mat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func randDense(r *xrand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func embeddings(r *xrand.Rand, m, n int) []Embedding {
	return []Embedding{
		NewDenseJL(r, m, n),
		NewSparseJL(r, m, n, 1),
		NewSparseJL(r, m, n, 4),
		NewSRHT(r, m, n),
	}
}

func TestTargetDimension(t *testing.T) {
	d := TargetDimension(1000, 0.1)
	if d < 5000 || d > 6000 {
		t.Errorf("TargetDimension(1000, 0.1) = %d, want about 5526", d)
	}
	if TargetDimension(1, 0.5) < 1 {
		t.Error("degenerate point count should still give a positive dimension")
	}
	defer func() {
		if recover() == nil {
			t.Error("eps out of range should panic")
		}
	}()
	TargetDimension(10, 0)
}

func TestEmbeddingsPreserveNormsOnAverage(t *testing.T) {
	r := xrand.New(1)
	n := 2048
	m := 256
	const trials = 40
	for _, e := range embeddings(r, m, n) {
		var meanDist float64
		for i := 0; i < trials; i++ {
			x := randDense(r, n)
			meanDist += Distortion(e, x)
		}
		meanDist /= trials
		// With m=256 the expected distortion is about 1/sqrt(m) ≈ 0.06.
		if meanDist > 0.2 {
			t.Errorf("%s: mean distortion %.3f too high", e.Name(), meanDist)
		}
		if mm, nn := e.Dims(); mm != m || nn != n {
			t.Errorf("%s: Dims = %d,%d", e.Name(), mm, nn)
		}
	}
}

func TestEmbeddingsPreserveDistances(t *testing.T) {
	// The JL use case: pairwise distances between a small point set.
	r := xrand.New(2)
	n, m := 1024, 256
	points := make([][]float64, 10)
	for i := range points {
		points[i] = randDense(r, n)
	}
	for _, e := range embeddings(r, m, n) {
		embedded := make([][]float64, len(points))
		for i, p := range points {
			embedded[i] = e.Apply(p)
		}
		var worst float64
		for i := 0; i < len(points); i++ {
			for j := i + 1; j < len(points); j++ {
				orig := vec.Norm2(vec.Sub(points[i], points[j]))
				emb := vec.Norm2(vec.Sub(embedded[i], embedded[j]))
				d := math.Abs(emb/orig - 1)
				if d > worst {
					worst = d
				}
			}
		}
		if worst > 0.35 {
			t.Errorf("%s: worst pairwise distortion %.3f", e.Name(), worst)
		}
	}
}

func TestSparseJLSparseInputAgreesWithDense(t *testing.T) {
	r := xrand.New(3)
	e := NewSparseJL(r, 128, 5000, 2)
	sparse := vec.NewSparse(5000)
	sparse.Set(7, 1.5)
	sparse.Set(4999, -2)
	sparse.Set(1234, 0.25)
	dense := sparse.Dense()
	a := e.Apply(dense)
	b := e.ApplySparse(sparse)
	if vec.Norm2(vec.Sub(a, b)) > 1e-12 {
		t.Fatal("ApplySparse disagrees with Apply")
	}
}

func TestSparseJLOperatorAdjoint(t *testing.T) {
	r := xrand.New(4)
	e := NewSparseJL(r, 64, 300, 3)
	x := randDense(r, 300)
	y := randDense(r, 64)
	lhs := vec.Dot(e.MulVec(x), y)
	rhs := vec.Dot(x, e.TMulVec(y))
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestEmbeddingLinearityProperty(t *testing.T) {
	r := xrand.New(5)
	es := embeddings(r, 64, 256)
	f := func(seed uint64) bool {
		rr := xrand.New(seed)
		x := randDense(rr, 256)
		y := randDense(rr, 256)
		for _, e := range es {
			lhs := e.Apply(vec.Add(x, y))
			rhs := vec.Add(e.Apply(x), e.Apply(y))
			if vec.Norm2(vec.Sub(lhs, rhs)) > 1e-9*(1+vec.Norm2(lhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEmbeddingPanics(t *testing.T) {
	r := xrand.New(6)
	cases := []func(){
		func() { NewDenseJL(r, 0, 5) },
		func() { NewSparseJL(r, 8, 5, 0) },
		func() { NewSparseJL(r, 8, 5, 9) },
		func() { NewSRHT(r, 0, 5) },
		func() { NewFeatureHasher(r, 0) },
		func() { NewSparseJL(r, 8, 5, 1).Apply(make([]float64, 3)) },
		func() { NewSparseJL(r, 8, 5, 1).TMulVec(make([]float64, 3)) },
		func() { NewSRHT(r, 4, 5).Apply(make([]float64, 3)) },
		func() { NewDenseJL(r, 4, 5); NewSparseJL(r, 8, 5, 1).ApplySparse(vec.NewSparse(3)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestFeatureHasherInnerProduct(t *testing.T) {
	r := xrand.New(7)
	fh := NewFeatureHasher(r, 4096)
	if fh.Dim() != 4096 {
		t.Fatalf("Dim = %d", fh.Dim())
	}
	// Two documents sharing half their features.
	docA := map[string]float64{}
	docB := map[string]float64{}
	for i := 0; i < 200; i++ {
		docA[fmtFeature("shared", i)] = 1
		docB[fmtFeature("shared", i)] = 1
		docA[fmtFeature("onlya", i)] = 1
		docB[fmtFeature("onlyb", i)] = 1
	}
	ha := fh.Hash(docA)
	hb := fh.Hash(docB)
	gotDot := vec.Dot(ha, hb)
	wantDot := 200.0
	if math.Abs(gotDot-wantDot) > 60 {
		t.Errorf("hashed inner product %.1f, want about %.0f", gotDot, wantDot)
	}
	// Norms approximately preserved too.
	if math.Abs(vec.Norm2(ha)-math.Sqrt(400)) > 3 {
		t.Errorf("hashed norm %.2f, want about 20", vec.Norm2(ha))
	}
}

func fmtFeature(prefix string, i int) string {
	return prefix + ":" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+(i/10)%26))
}

func TestFeatureHasherDeterministic(t *testing.T) {
	fh := NewFeatureHasher(xrand.New(8), 64)
	f := map[string]float64{"x": 1, "y": -2}
	a := fh.Hash(f)
	b := fh.Hash(f)
	if vec.Norm2(vec.Sub(a, b)) != 0 {
		t.Fatal("FeatureHasher not deterministic")
	}
}

func TestSketchedLeastSquaresNearOptimal(t *testing.T) {
	r := xrand.New(9)
	rows, cols := 4000, 20
	a := mat.NewGaussian(r, rows, cols)
	xTrue := randDense(r, cols)
	b := a.MulVec(xTrue)
	// Add a little noise so the optimum is non-trivial.
	for i := range b {
		b[i] += 0.01 * r.NormFloat64()
	}
	exact, err := linalg.LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sketched, err := SketchedLeastSquares(r, a, b, 400)
	if err != nil {
		t.Fatal(err)
	}
	exactResid := vec.Norm2(vec.Sub(b, a.MulVec(exact)))
	sketchResid := vec.Norm2(vec.Sub(b, a.MulVec(sketched)))
	if sketchResid > 1.2*exactResid+1e-9 {
		t.Fatalf("sketched residual %.4f much worse than exact %.4f", sketchResid, exactResid)
	}
}

func TestSketchedLeastSquaresErrors(t *testing.T) {
	r := xrand.New(10)
	a := mat.NewGaussian(r, 50, 10)
	if _, err := SketchedLeastSquares(r, a, make([]float64, 3), 20); err == nil {
		t.Error("bad b length should fail")
	}
	if _, err := SketchedLeastSquares(r, a, make([]float64, 50), 5); err == nil {
		t.Error("sketchRows < cols should fail")
	}
	// sketchRows >= rows falls back to the exact solve.
	if _, err := SketchedLeastSquares(r, a, make([]float64, 50), 100); err != nil {
		t.Errorf("fallback solve failed: %v", err)
	}
}

func TestSketchedLowRankCapturesStructure(t *testing.T) {
	r := xrand.New(11)
	rows, cols, rank := 300, 40, 3
	// Build an (almost) rank-3 matrix.
	basis := mat.NewGaussian(r, rank, cols)
	a := mat.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		coefs := randDense(r, rank)
		for j := 0; j < cols; j++ {
			var v float64
			for c := 0; c < rank; c++ {
				v += coefs[c] * basis.At(c, j)
			}
			a.Set(i, j, v+0.001*r.NormFloat64())
		}
	}
	q, err := SketchedLowRank(r, a, rank, 8)
	if err != nil {
		t.Fatal(err)
	}
	errNorm := LowRankError(a, q)
	total := vec.Norm2(a.Data)
	if errNorm/total > 0.05 {
		t.Fatalf("sketched low-rank error %.4f of total norm", errNorm/total)
	}
	if _, err := SketchedLowRank(r, a, 0, 5); err == nil {
		t.Error("rank 0 should fail")
	}
}

func BenchmarkDenseJLApply(b *testing.B) {
	r := xrand.New(1)
	e := NewDenseJL(r, 256, 4096)
	x := randDense(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Apply(x)
	}
}

func BenchmarkSparseJLApply(b *testing.B) {
	r := xrand.New(1)
	e := NewSparseJL(r, 256, 4096, 2)
	x := randDense(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Apply(x)
	}
}

func BenchmarkSRHTApply(b *testing.B) {
	r := xrand.New(1)
	e := NewSRHT(r, 256, 4096)
	x := randDense(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Apply(x)
	}
}
