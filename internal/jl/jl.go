// Package jl implements the dimensionality-reduction maps of Section 3 of
// the survey and the sketch-and-solve numerical linear algebra built on top
// of them.
//
// Embeddings (all mapping R^n -> R^m and aiming to preserve Euclidean norms
// to within 1±eps, per the Johnson-Lindenstrauss lemma):
//
//   - DenseJL: i.i.d. Gaussian matrix — the original construction, O(nm) per
//     embedding.
//   - SparseJL: Count-Sketch / OSNAP matrix with s non-zeros per column
//     [DKS10, KN12] — O(s·nnz(x)) per embedding, which is the "runtime scales
//     with the sparsity of x" property the survey emphasizes.
//   - FeatureHashing: the hashing trick of [WDL+09, SPD+09]; identical
//     structure to SparseJL with s=1, exposed over string features.
//   - SRHT: subsampled randomized Hadamard transform [AC10] — structured,
//     O(n log n) per embedding regardless of sparsity.
//
// Sketch-and-solve [CW13]:
//
//   - SketchedLeastSquares solves an overconstrained regression problem by
//     embedding the rows and solving the much smaller sketched problem.
//   - SketchedLowRank computes an approximate rank-r factorization from a
//     sketched row space.
package jl

import (
	"fmt"
	"math"

	"repro/internal/fourier"
	"repro/internal/hashing"
	"repro/internal/linalg"
	"repro/internal/mat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Embedding maps vectors from R^n to R^m, approximately preserving norms.
type Embedding interface {
	// Name identifies the embedding in experiment tables.
	Name() string
	// Dims returns (m, n), the output and input dimensions.
	Dims() (m, n int)
	// Apply embeds a dense vector of length n.
	Apply(x []float64) []float64
}

// TargetDimension returns the standard JL target dimension for embedding
// `points` vectors with distortion eps: ceil(8 ln(points) / eps^2).
func TargetDimension(points int, eps float64) int {
	if points < 2 {
		points = 2
	}
	if eps <= 0 || eps >= 1 {
		panic("jl: TargetDimension requires eps in (0,1)")
	}
	return int(math.Ceil(8 * math.Log(float64(points)) / (eps * eps)))
}

// DenseJL is the dense Gaussian embedding.
type DenseJL struct {
	a *mat.Dense
}

// NewDenseJL creates an m x n Gaussian embedding.
func NewDenseJL(r *xrand.Rand, m, n int) *DenseJL {
	if m < 1 || n < 1 {
		panic("jl: NewDenseJL requires m, n >= 1")
	}
	return &DenseJL{a: mat.NewGaussian(r, m, n)}
}

// Name identifies the embedding.
func (d *DenseJL) Name() string { return "dense-gaussian" }

// Dims returns the embedding dimensions.
func (d *DenseJL) Dims() (int, int) { return d.a.Dims() }

// Apply embeds x.
func (d *DenseJL) Apply(x []float64) []float64 { return d.a.MulVec(x) }

// Operator exposes the underlying matrix for sketch-and-solve uses.
func (d *DenseJL) Operator() mat.Operator { return d.a }

// SparseJL is the sparse sign embedding (Count-Sketch for s=1, OSNAP for
// larger s): each input coordinate touches exactly s output coordinates.
type SparseJL struct {
	m, n    int
	s       int
	hashes  []hashing.Hasher
	signs   []hashing.SignHasher
	rowBase []int
}

// NewSparseJL creates an m x n sparse embedding with s non-zeros per column.
// The output coordinates are partitioned into s blocks of m/s rows and each
// block receives one non-zero per column, which keeps the column norms
// exactly 1.
func NewSparseJL(r *xrand.Rand, m, n, s int) *SparseJL {
	if m < 1 || n < 1 || s < 1 || s > m {
		panic(fmt.Sprintf("jl: NewSparseJL requires 1 <= s <= m and n >= 1 (got m=%d n=%d s=%d)", m, n, s))
	}
	e := &SparseJL{m: m, n: n, s: s}
	block := m / s
	if block == 0 {
		block = 1
	}
	for b := 0; b < s; b++ {
		e.hashes = append(e.hashes, hashing.NewPolyHash(r, 2, uint64(block)))
		e.signs = append(e.signs, hashing.NewPolySign(r, 2))
		e.rowBase = append(e.rowBase, b*block)
	}
	return e
}

// Name identifies the embedding.
func (e *SparseJL) Name() string { return fmt.Sprintf("sparse-jl(s=%d)", e.s) }

// Dims returns the embedding dimensions.
func (e *SparseJL) Dims() (int, int) { return e.m, e.n }

// Apply embeds x in time O(s · nnz(x)).
func (e *SparseJL) Apply(x []float64) []float64 {
	if len(x) != e.n {
		panic(fmt.Sprintf("jl: Apply dimension mismatch: n=%d, len(x)=%d", e.n, len(x)))
	}
	out := make([]float64, e.m)
	scale := 1 / math.Sqrt(float64(e.s))
	for j, xj := range x {
		if xj == 0 {
			continue
		}
		for b := 0; b < e.s; b++ {
			row := e.rowBase[b] + int(e.hashes[b].Hash(uint64(j)))
			if row >= e.m {
				row = e.m - 1
			}
			out[row] += e.signs[b].Sign(uint64(j)) * xj * scale
		}
	}
	return out
}

// ApplySparse embeds a sparse vector, touching only its non-zero entries.
func (e *SparseJL) ApplySparse(x *vec.Sparse) []float64 {
	if x.Dim != e.n {
		panic(fmt.Sprintf("jl: ApplySparse dimension mismatch: n=%d, x.Dim=%d", e.n, x.Dim))
	}
	out := make([]float64, e.m)
	scale := 1 / math.Sqrt(float64(e.s))
	for _, entry := range x.Entries {
		if entry.Value == 0 {
			continue
		}
		j := uint64(entry.Index)
		for b := 0; b < e.s; b++ {
			row := e.rowBase[b] + int(e.hashes[b].Hash(j))
			if row >= e.m {
				row = e.m - 1
			}
			out[row] += e.signs[b].Sign(j) * entry.Value * scale
		}
	}
	return out
}

// MulVec makes SparseJL usable as a mat.Operator (forward direction).
func (e *SparseJL) MulVec(x []float64) []float64 { return e.Apply(x) }

// TMulVec applies the transpose of the embedding.
func (e *SparseJL) TMulVec(y []float64) []float64 {
	if len(y) != e.m {
		panic(fmt.Sprintf("jl: TMulVec dimension mismatch: m=%d, len(y)=%d", e.m, len(y)))
	}
	out := make([]float64, e.n)
	scale := 1 / math.Sqrt(float64(e.s))
	for j := 0; j < e.n; j++ {
		var s float64
		for b := 0; b < e.s; b++ {
			row := e.rowBase[b] + int(e.hashes[b].Hash(uint64(j)))
			if row >= e.m {
				row = e.m - 1
			}
			s += e.signs[b].Sign(uint64(j)) * y[row] * scale
		}
		out[j] = s
	}
	return out
}

// SRHT is the subsampled randomized Hadamard transform: x -> sqrt(n/m) · P·H·D·x
// where D is a random ±1 diagonal, H the normalized Walsh-Hadamard transform
// and P samples m coordinates at random. The input length is padded up to a
// power of two internally.
type SRHT struct {
	m, n    int
	padded  int
	signs   []float64
	samples []int
}

// NewSRHT creates an m x n subsampled randomized Hadamard transform.
func NewSRHT(r *xrand.Rand, m, n int) *SRHT {
	if m < 1 || n < 1 {
		panic("jl: NewSRHT requires m, n >= 1")
	}
	padded := fourier.NextPowerOfTwo(n)
	if m > padded {
		m = padded
	}
	signs := make([]float64, padded)
	for i := range signs {
		signs[i] = r.Rademacher()
	}
	return &SRHT{m: m, n: n, padded: padded, signs: signs, samples: r.Sample(padded, m)}
}

// Name identifies the embedding.
func (s *SRHT) Name() string { return "srht" }

// Dims returns the embedding dimensions.
func (s *SRHT) Dims() (int, int) { return s.m, s.n }

// Apply embeds x in O(n log n) time (independent of the sparsity of x).
func (s *SRHT) Apply(x []float64) []float64 {
	if len(x) != s.n {
		panic(fmt.Sprintf("jl: Apply dimension mismatch: n=%d, len(x)=%d", s.n, len(x)))
	}
	work := make([]float64, s.padded)
	for i, v := range x {
		work[i] = v * s.signs[i]
	}
	transformed := fourier.FWHTNormalized(work)
	scale := math.Sqrt(float64(s.padded) / float64(s.m))
	out := make([]float64, s.m)
	for i, idx := range s.samples {
		out[i] = transformed[idx] * scale
	}
	return out
}

// FeatureHasher implements the hashing trick for string-keyed features: a
// feature map from strings to weights is embedded into R^m with a single
// hash and sign per feature, so that inner products between hashed vectors
// approximate inner products between the original (huge, sparse) feature
// vectors.
type FeatureHasher struct {
	m     int
	hash  hashing.Hasher
	sign  hashing.SignHasher
	mixer hashing.Hasher
}

// NewFeatureHasher creates a feature hasher with m output dimensions.
func NewFeatureHasher(r *xrand.Rand, m int) *FeatureHasher {
	if m < 1 {
		panic("jl: NewFeatureHasher requires m >= 1")
	}
	return &FeatureHasher{
		m:     m,
		hash:  hashing.NewPolyHash(r, 2, uint64(m)),
		sign:  hashing.NewPolySign(r, 2),
		mixer: hashing.NewTabulation(r, 1<<62),
	}
}

// Dim returns the output dimensionality.
func (f *FeatureHasher) Dim() int { return f.m }

// featureID maps a string feature name to a 64-bit key (FNV-1a mixed through
// tabulation hashing so that adversarially chosen names still spread).
func (f *FeatureHasher) featureID(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return f.mixer.Hash(h)
}

// Hash embeds a map of feature name -> weight into R^m.
func (f *FeatureHasher) Hash(features map[string]float64) []float64 {
	out := make([]float64, f.m)
	for name, w := range features {
		id := f.featureID(name)
		out[f.hash.Hash(id)] += f.sign.Sign(id) * w
	}
	return out
}

// Distortion returns |  ||Ax|| / ||x||  - 1 |, the norm distortion of an
// embedding on a particular vector (0 is perfect).
func Distortion(e Embedding, x []float64) float64 {
	nx := vec.Norm2(x)
	if nx == 0 {
		return 0
	}
	return math.Abs(vec.Norm2(e.Apply(x))/nx - 1)
}

// Sketch-and-solve --------------------------------------------------------

// SketchedLeastSquares solves min_x ||A x - b|| approximately by embedding
// the rows of A (and b) with a sparse JL transform of sketchRows rows and
// solving the small sketched problem exactly. For sketchRows = O(cols/eps^2)
// the residual is within (1+eps) of optimal [CW13].
func SketchedLeastSquares(r *xrand.Rand, a *mat.Dense, b []float64, sketchRows int) ([]float64, error) {
	rows, cols := a.Dims()
	if len(b) != rows {
		return nil, fmt.Errorf("jl: SketchedLeastSquares needs len(b)=%d, got %d", rows, len(b))
	}
	if sketchRows < cols {
		return nil, fmt.Errorf("jl: sketchRows=%d must be at least the number of columns %d", sketchRows, cols)
	}
	if sketchRows >= rows {
		// Sketching would not reduce the problem; solve directly.
		return linalg.LeastSquares(a, b)
	}
	embed := NewSparseJL(r, sketchRows, rows, 1)
	// Sketch every column of A and the right-hand side: S·A and S·b.
	sa := mat.NewDense(sketchRows, cols)
	for j := 0; j < cols; j++ {
		col := embed.Apply(a.Col(j))
		for i := 0; i < sketchRows; i++ {
			sa.Set(i, j, col[i])
		}
	}
	sb := embed.Apply(b)
	return linalg.LeastSquares(sa, sb)
}

// SketchedLowRank returns an approximate rank-r factorization of A: an
// orthonormal basis Q (n x r) of an approximate dominant row space obtained
// by sketching the rows of A, such that ||A - A Q Qᵀ||_F is close to the best
// rank-r error. The returned matrix holds the basis vectors as columns.
func SketchedLowRank(r *xrand.Rand, a *mat.Dense, rank, oversample int) (*mat.Dense, error) {
	rows, cols := a.Dims()
	if rank < 1 || rank > cols {
		return nil, fmt.Errorf("jl: rank %d out of range [1,%d]", rank, cols)
	}
	sketchRows := rank + oversample
	if sketchRows > rows {
		sketchRows = rows
	}
	// Sketch the row space: S·A where S is sparse JL over the rows.
	embed := NewSparseJL(r, sketchRows, rows, 1)
	sa := mat.NewDense(sketchRows, cols)
	for j := 0; j < cols; j++ {
		col := embed.Apply(a.Col(j))
		for i := 0; i < sketchRows; i++ {
			sa.Set(i, j, col[i])
		}
	}
	// The dominant right singular vectors of S·A approximate those of A.
	return linalg.TopSingularVectors(sa, rank, 40, r), nil
}

// LowRankError returns ||A - A·Q·Qᵀ||_F for an orthonormal basis Q (columns).
func LowRankError(a *mat.Dense, q *mat.Dense) float64 {
	rows, cols := a.Dims()
	_, rank := q.Dims()
	var sum float64
	row := make([]float64, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			row[j] = a.At(i, j)
		}
		// projection of the row onto the basis
		proj := make([]float64, cols)
		for c := 0; c < rank; c++ {
			qc := q.Col(c)
			coef := vec.Dot(row, qc)
			vec.AXPY(coef, qc, proj)
		}
		for j := 0; j < cols; j++ {
			d := row[j] - proj[j]
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}
