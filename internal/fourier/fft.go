// Package fourier provides the transform substrate for the sparse Fourier
// transform work in Section 4 of the survey: a radix-2 fast Fourier
// transform, Bluestein's algorithm for arbitrary lengths, a reference DFT,
// the fast Walsh–Hadamard transform (the Fourier transform over the Boolean
// cube), and the flat-window filters used to bin spectrum coefficients with
// negligible leakage.
//
// Conventions: the forward transform is X[f] = sum_t x[t] * exp(-2πi f t / n)
// (no normalization); the inverse divides by n. These match the usual
// engineering convention, so FFT followed by InverseFFT is the identity.
package fourier

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Power-of-two lengths use the iterative radix-2 algorithm;
// other lengths fall back to Bluestein's algorithm. Length 0 returns an
// empty slice.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if IsPowerOfTwo(n) {
		out := make([]complex128, n)
		copy(out, x)
		radix2InPlace(out, false)
		return out
	}
	return bluestein(x, false)
}

// InverseFFT returns the inverse discrete Fourier transform of X, scaled by
// 1/n so that InverseFFT(FFT(x)) == x.
func InverseFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if IsPowerOfTwo(n) {
		out = make([]complex128, n)
		copy(out, x)
		radix2InPlace(out, true)
	} else {
		out = bluestein(x, true)
	}
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// FFTReal transforms a real-valued signal.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// DFT computes the transform by the O(n^2) definition; it is the reference
// implementation the fast algorithms are tested against.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for f := 0; f < n; f++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(f) * float64(t) / float64(n)
			sum += x[t] * cmplxExp(angle)
		}
		out[f] = sum
	}
	return out
}

// cmplxExp returns exp(i*angle).
func cmplxExp(angle float64) complex128 {
	s, c := math.Sincos(angle)
	return complex(c, s)
}

// radix2InPlace runs the iterative Cooley-Tukey FFT. inverse selects the
// conjugate twiddle factors (no scaling is applied here).
func radix2InPlace(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	logN := bits.TrailingZeros(uint(n))
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplxExp(step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for j := 0; j < half; j++ {
				u := a[start+j]
				v := a[start+j+half] * w
				a[start+j] = u + v
				a[start+j+half] = u - v
				w *= wBase
			}
		}
	}
}

// bluestein computes the DFT of arbitrary length via the chirp-z transform,
// using a power-of-two FFT of length >= 2n-1 internally.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign * i * pi * k^2 / n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use float64 of k*k mod 2n to keep the angle accurate for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplxExp(sign * math.Pi * float64(kk) / float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	b[0] = cmplxConj(chirp[0])
	for k := 1; k < n; k++ {
		b[k] = cmplxConj(chirp[k])
		b[m-k] = b[k]
	}
	radix2InPlace(a, false)
	radix2InPlace(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2InPlace(a, true)
	// The length-m inverse above is unscaled; divide by m.
	out := make([]complex128, n)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

func cmplxConj(z complex128) complex128 { return complex(real(z), -imag(z)) }

// FWHT computes the (unnormalized) fast Walsh-Hadamard transform of x in
// place semantics: a new slice is returned, the input is unchanged. The
// length must be a power of two. Applying FWHT twice returns the original
// vector scaled by n.
func FWHT(x []float64) []float64 {
	n := len(x)
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("fourier: FWHT length %d is not a power of two", n))
	}
	a := make([]float64, n)
	copy(a, x)
	for size := 1; size < n; size <<= 1 {
		for start := 0; start < n; start += size * 2 {
			for j := start; j < start+size; j++ {
				u, v := a[j], a[j+size]
				a[j], a[j+size] = u+v, u-v
			}
		}
	}
	return a
}

// FWHTNormalized returns the orthonormal Walsh-Hadamard transform
// (FWHT scaled by 1/sqrt(n)), which is its own inverse.
func FWHTNormalized(x []float64) []float64 {
	out := FWHT(x)
	scale := 1 / math.Sqrt(float64(len(x)))
	for i := range out {
		out[i] *= scale
	}
	return out
}

// NextPowerOfTwo returns the smallest power of two >= n (and 1 for n <= 1).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(n - 1)))
}
