package fourier

import (
	"math"
)

// Filter is a time-domain window together with its frequency response,
// designed so that when a signal is multiplied by the window and aliased
// into B buckets, each bucket captures a narrow band of the spectrum with
// controlled leakage into neighbouring buckets. This is the "careful filter
// design" of [HIKP12a, HIKP12b] the survey highlights: boxcar windows leak
// heavily (sinc tails), flat-window (Gaussian-convolved-with-rectangle)
// filters make the leakage negligible.
type Filter struct {
	// Time holds the time-domain window coefficients (length SupportLen).
	Time []complex128
	// Freq holds the frequency response sampled at all n frequencies.
	Freq []complex128
	// N is the signal length the filter was designed for.
	N int
}

// SupportLen returns the number of non-zero time-domain taps.
func (f *Filter) SupportLen() int { return len(f.Time) }

// NewBoxcarFilter returns the trivial filter that takes w consecutive time
// samples with equal weight. Its frequency response is a sinc with heavy
// side lobes — the "leaky buckets" baseline.
func NewBoxcarFilter(n, w int) *Filter {
	if w < 1 || w > n {
		panic("fourier: NewBoxcarFilter requires 1 <= w <= n")
	}
	time := make([]complex128, w)
	for i := range time {
		time[i] = complex(1/float64(w), 0)
	}
	return &Filter{Time: time, Freq: freqResponse(time, n), N: n}
}

// NewFlatWindowFilter returns a flat-window filter for hashing a length-n
// spectrum into b buckets: a Gaussian of standard deviation sigma truncated
// to w taps, convolved (in frequency) with a rectangle of width about n/b.
// The construction follows [HIKP12b]: multiply a truncated Gaussian by a
// sinc in time, so the frequency response is (approximately) a Gaussian
// convolved with a boxcar — flat across a bucket, with super-polynomially
// decaying tails.
//
// The delta parameter controls the leakage: tails fall below roughly delta
// of the pass-band height. Reasonable values are 1e-6..1e-9.
func NewFlatWindowFilter(n, b int, delta float64) *Filter {
	if b < 1 || b > n {
		panic("fourier: NewFlatWindowFilter requires 1 <= b <= n")
	}
	if delta <= 0 || delta >= 1 {
		panic("fourier: NewFlatWindowFilter requires delta in (0,1)")
	}
	// Width of the time-domain support: O(b * log(1/delta)).
	w := int(math.Ceil(float64(b) * math.Log(1/delta)))
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	// Gaussian standard deviation in time chosen so that the frequency-domain
	// Gaussian has standard deviation about n/(2*pi*sigma_t) comparable to a
	// fraction of the bucket width n/b.
	sigmaT := float64(w) / (2 * math.Sqrt(2*math.Log(1/delta)))
	center := float64(w-1) / 2
	passband := float64(n) / (2 * float64(b)) // half-width of the flat region
	time := make([]complex128, w)
	var norm float64
	for i := 0; i < w; i++ {
		t := float64(i) - center
		gauss := math.Exp(-t * t / (2 * sigmaT * sigmaT))
		// sinc factor spreads the Gaussian response into a flat top of width
		// about 2*passband in frequency.
		sinc := 1.0
		if t != 0 {
			arg := 2 * math.Pi * passband * t / float64(n)
			sinc = math.Sin(arg) / arg
		}
		v := gauss * sinc
		time[i] = complex(v, 0)
		norm += v
	}
	// Normalize so the DC response is 1 (a coefficient centred in a bucket is
	// passed with unit gain).
	if norm != 0 {
		for i := range time {
			time[i] /= complex(norm, 0)
		}
	}
	return &Filter{Time: time, Freq: freqResponse(time, n), N: n}
}

// freqResponse returns the length-n frequency response of a time-domain
// window (zero-padded to length n).
func freqResponse(time []complex128, n int) []complex128 {
	padded := make([]complex128, n)
	copy(padded, time)
	return FFT(padded)
}

// Leakage measures how much of the filter's energy falls outside the central
// band of +-bandwidth frequencies around zero: the ratio of out-of-band
// energy to total energy. Smaller is better; boxcar filters have large
// leakage, flat-window filters have nearly none.
func (f *Filter) Leakage(bandwidth int) float64 {
	var inBand, total float64
	n := f.N
	for k := 0; k < n; k++ {
		// Distance of frequency k from 0 (circularly).
		d := k
		if d > n/2 {
			d = n - d
		}
		e := real(f.Freq[k])*real(f.Freq[k]) + imag(f.Freq[k])*imag(f.Freq[k])
		total += e
		if d <= bandwidth {
			inBand += e
		}
	}
	if total == 0 {
		return 0
	}
	return 1 - inBand/total
}
