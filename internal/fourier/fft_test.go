package fourier

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func randComplex(r *xrand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestFFTMatchesDFT(t *testing.T) {
	r := xrand.New(1)
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128} {
		x := randComplex(r, n)
		fast := FFT(x)
		slow := DFT(x)
		if err := vec.CRelativeError(slow, fast); err > 1e-9 {
			t.Fatalf("n=%d: FFT differs from DFT by %v", n, err)
		}
	}
}

func TestBluesteinMatchesDFT(t *testing.T) {
	r := xrand.New(2)
	for _, n := range []int{3, 5, 6, 7, 12, 100, 127} {
		x := randComplex(r, n)
		fast := FFT(x)
		slow := DFT(x)
		if err := vec.CRelativeError(slow, fast); err > 1e-8 {
			t.Fatalf("n=%d: Bluestein FFT differs from DFT by %v", n, err)
		}
	}
}

func TestInverseFFTRoundTrip(t *testing.T) {
	r := xrand.New(3)
	for _, n := range []int{1, 2, 16, 64, 100, 255, 1024} {
		x := randComplex(r, n)
		back := InverseFFT(FFT(x))
		if err := vec.CRelativeError(x, back); err > 1e-9 {
			t.Fatalf("n=%d: round trip error %v", n, err)
		}
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if got := FFT(nil); got != nil {
		t.Error("FFT(nil) should be nil")
	}
	if got := InverseFFT(nil); got != nil {
		t.Error("InverseFFT(nil) should be nil")
	}
	x := []complex128{3 + 4i}
	if got := FFT(x); got[0] != x[0] {
		t.Error("FFT of length 1 should be identity")
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of a constant signal is an impulse at frequency 0.
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	got := FFT(x)
	if cmplx.Abs(got[0]-complex(float64(n), 0)) > 1e-9 {
		t.Errorf("FFT[0] = %v, want %d", got[0], n)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(got[k]) > 1e-9 {
			t.Errorf("FFT[%d] = %v, want 0", k, got[k])
		}
	}
	// FFT of a pure tone exp(2*pi*i*f0*t/n) is an impulse at f0.
	f0 := 5
	for i := range x {
		x[i] = cmplxExp(2 * math.Pi * float64(f0) * float64(i) / float64(n))
	}
	got = FFT(x)
	for k := 0; k < n; k++ {
		want := 0.0
		if k == f0 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(got[k])-want) > 1e-9 {
			t.Errorf("tone FFT[%d] = %v, want magnitude %v", k, got[k], want)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rr := xrand.New(seed)
		n := 64
		x := randComplex(rr, n)
		y := randComplex(rr, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		lhs := FFT(sum)
		fx, fy := FFT(x), FFT(y)
		rhs := make([]complex128, n)
		for i := range rhs {
			rhs[i] = fx[i] + fy[i]
		}
		return vec.CRelativeError(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// ||FFT(x)||^2 = n * ||x||^2.
	f := func(seed uint64) bool {
		rr := xrand.New(seed)
		n := 128
		x := randComplex(rr, n)
		fx := FFT(x)
		lhs := vec.CNorm2(fx) * vec.CNorm2(fx)
		rhs := float64(n) * vec.CNorm2(x) * vec.CNorm2(x)
		return math.Abs(lhs-rhs) < 1e-6*(1+rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTReal(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	got := FFTReal(x)
	want := DFT([]complex128{1, 2, 3, 4})
	if vec.CRelativeError(want, got) > 1e-12 {
		t.Fatalf("FFTReal mismatch")
	}
}

func TestFWHTInvolution(t *testing.T) {
	r := xrand.New(6)
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		twice := FWHT(FWHT(x))
		for i := range twice {
			twice[i] /= float64(n)
		}
		if vec.RelativeError(x, twice) > 1e-10 {
			t.Fatalf("n=%d: FWHT applied twice / n != identity", n)
		}
		// Normalized version is an involution directly.
		norm2 := FWHTNormalized(FWHTNormalized(x))
		if vec.RelativeError(x, norm2) > 1e-10 {
			t.Fatalf("n=%d: normalized FWHT not an involution", n)
		}
	}
}

func TestFWHTKnownValues(t *testing.T) {
	// FWHT of [1,0,0,0] is all-ones (row of the Hadamard matrix).
	got := FWHT([]float64{1, 0, 0, 0})
	for _, v := range got {
		if v != 1 {
			t.Fatalf("FWHT(e0) = %v", got)
		}
	}
	// FWHT of [1,1,1,1] = [4,0,0,0].
	got = FWHT([]float64{1, 1, 1, 1})
	if got[0] != 4 || got[1] != 0 || got[2] != 0 || got[3] != 0 {
		t.Fatalf("FWHT(ones) = %v", got)
	}
}

func TestFWHTPanicsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FWHT(make([]float64, 3))
}

func TestFWHTParseval(t *testing.T) {
	r := xrand.New(7)
	x := make([]float64, 128)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	fx := FWHTNormalized(x)
	if math.Abs(vec.Norm2(fx)-vec.Norm2(x)) > 1e-9 {
		t.Fatal("normalized FWHT does not preserve the l2 norm")
	}
}

func TestPowerOfTwoHelpers(t *testing.T) {
	if !IsPowerOfTwo(1) || !IsPowerOfTwo(64) || IsPowerOfTwo(0) || IsPowerOfTwo(12) {
		t.Error("IsPowerOfTwo wrong")
	}
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 64: 64, 65: 128}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBoxcarFilter(t *testing.T) {
	f := NewBoxcarFilter(256, 16)
	if f.SupportLen() != 16 {
		t.Fatalf("SupportLen = %d", f.SupportLen())
	}
	if len(f.Freq) != 256 {
		t.Fatalf("Freq length %d", len(f.Freq))
	}
	// DC gain 1.
	if cmplx.Abs(f.Freq[0]-1) > 1e-9 {
		t.Errorf("boxcar DC gain %v, want 1", f.Freq[0])
	}
}

func TestFlatWindowLeakageMuchLowerThanBoxcar(t *testing.T) {
	n, b := 4096, 16
	boxcar := NewBoxcarFilter(n, n/b)
	flat := NewFlatWindowFilter(n, b, 1e-8)
	bandwidth := n / b // pass plus transition region
	lBox := boxcar.Leakage(bandwidth)
	lFlat := flat.Leakage(bandwidth)
	if lFlat >= lBox {
		t.Fatalf("flat-window leakage %v not better than boxcar %v", lFlat, lBox)
	}
	if lFlat > 0.05 {
		t.Errorf("flat-window leakage %v unexpectedly high", lFlat)
	}
}

func TestFilterPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBoxcarFilter(16, 0) },
		func() { NewBoxcarFilter(16, 17) },
		func() { NewFlatWindowFilter(16, 0, 1e-6) },
		func() { NewFlatWindowFilter(16, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := randComplex(xrand.New(1), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFT65536(b *testing.B) {
	x := randComplex(xrand.New(1), 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFWHT65536(b *testing.B) {
	r := xrand.New(1)
	x := make([]float64, 65536)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FWHT(x)
	}
}
