// Example aggregate demonstrates cross-process sketch aggregation: several
// sketchd daemons ingest disjoint slices of a stream, and because sketches
// are linear maps, merging their binary snapshots reconstructs — exactly —
// the sketch a single process would have built from the whole stream.
//
// Run with no flags for a self-contained demo: two daemons are started
// in-process on loopback ports, each ingests half of a Zipf stream over HTTP
// from -pushers concurrent connections (exercising the daemons' lock-free
// producer lanes) — daemon A over persistent streaming connections (framed
// SKB1 over POST /v1/stream, one pinned producer lane per pusher), daemon B
// over classic per-chunk POSTs, proving the two ingest paths interchange.
// Daemon A merges daemon B's snapshot, and every estimate is checked against
// a reference built through a multi-producer engine — the in-process twin of
// the same pipeline. Linearity makes every layer of this exact, so the max
// deviation must be 0.
//
// The same binary also drives real multi-process topologies built from
// cmd/sketchd:
//
//	terminal 1:  sketchd -addr 127.0.0.1:7601
//	terminal 2:  sketchd -addr 127.0.0.1:7602
//	terminal 3:  aggregate -push http://127.0.0.1:7601 -n 50000 -half 0
//	             aggregate -push http://127.0.0.1:7602 -n 50000 -half 1
//	             aggregate -merge http://127.0.0.1:7601,http://127.0.0.1:7602
//
// -push streams half of a deterministic Zipf workload into the daemon,
// chunked across -pushers concurrent connections; -transport picks how
// (stream = persistent framed connections, the default; post = one
// /v1/update POST per chunk), and -stream-addr targets a daemon's raw TCP
// streaming listener (sketchd -stream-addr) instead of tunnelling frames
// through its HTTP port. -merge folds the second daemon's snapshot into the
// first and prints the merged top-k.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

const (
	width = 2048
	depth = 4
	topK  = 32
)

func main() {
	var (
		push    = flag.String("push", "", "stream updates to this sketchd base URL")
		merge   = flag.String("merge", "", "comma-separated base URLs: merge the others' snapshots into the first")
		n       = flag.Int("n", 50_000, "stream length for -push and the demo")
		seed    = flag.Uint64("seed", 42, "stream seed (shared by all pushers so halves are disjoint slices of one stream)")
		half    = flag.Int("half", 0, "with -push: which half of the stream to send (0 or 1)")
		pushers = flag.Int("pushers", 4, "concurrent connections for -push and the demo")
		trans   = flag.String("transport", "stream", "how -push ships updates: stream (persistent framed connections) or post (one /v1/update POST per chunk)")
		strAddr = flag.String("stream-addr", "", "with -push -transport stream: the daemon's raw TCP streaming address (default: frames tunnel through POST /v1/stream on the -push URL)")
	)
	flag.Parse()
	if *pushers < 1 {
		*pushers = 1
	}
	if *trans != "stream" && *trans != "post" {
		log.Fatalf("aggregate: -transport must be stream or post, got %q", *trans)
	}

	switch {
	case *push != "":
		items, deltas := streamHalf(*seed, *n, *half)
		client := server.NewClient(*push, nil)
		streamTarget := ""
		if *trans == "stream" {
			streamTarget = *push
			if *strAddr != "" {
				streamTarget = *strAddr
			}
		}
		pushConcurrently(client, streamTarget, items, deltas, *pushers, nil)
		fmt.Printf("pushed %d updates (half %d of %d) to %s over %d concurrent %s connections\n",
			len(items), *half, *n, *push, *pushers, *trans)

	case *merge != "":
		urls := strings.Split(*merge, ",")
		if len(urls) < 2 {
			log.Fatal("aggregate: -merge needs at least two comma-separated URLs")
		}
		ctx := context.Background()
		dst := server.NewClient(urls[0], nil)
		for _, peer := range urls[1:] {
			snap, err := server.NewClient(peer, nil).Snapshot(ctx)
			if err != nil {
				log.Fatal(err)
			}
			if err := dst.Merge(ctx, snap); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("merged %d snapshot bytes from %s into %s\n", len(snap), peer, urls[0])
		}
		ranked, err := dst.TopK(ctx, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("merged top-10:")
		for _, ic := range ranked {
			fmt.Printf("  item %-12d %d\n", ic.Item, ic.Count)
		}

	default:
		demo(*seed, *n, *pushers)
	}
}

// pushConcurrently splits the key/delta columns across `pushers` goroutines
// so ingestion genuinely overlaps on the daemon's producer lanes. With a
// non-empty streamTarget each pusher holds one persistent streaming
// connection (its own session, its own pinned lane on the daemon) and ships
// its whole slice as framed batches; otherwise each pusher POSTs its slice
// in per-chunk /v1/update requests. Updates stay in column form from here to
// the daemon's counters either way. When refEng is non-nil, each pusher also
// feeds its columns through a private engine producer handle — building the
// in-process reference with exactly the pipeline the daemons use.
func pushConcurrently(client *server.Client, streamTarget string, items []uint64, deltas []float64, pushers int, refEng *engine.Engine[*sketch.HeavyHitterTracker]) {
	const chunk = 2048
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < pushers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ownItems := make([]uint64, 0, len(items)/pushers+1)
			ownDeltas := make([]float64, 0, len(items)/pushers+1)
			for i := w; i < len(items); i += pushers {
				ownItems = append(ownItems, items[i])
				ownDeltas = append(ownDeltas, deltas[i])
			}
			if refEng != nil {
				p := refEng.Producer()
				p.UpdateColumns(ownItems, ownDeltas)
				p.Close()
			}
			if streamTarget != "" {
				su, err := server.DialStream(streamTarget, server.StreamConfig{BatchSize: chunk})
				if err != nil {
					log.Fatal(err)
				}
				if err := su.UpdateColumns(ownItems, ownDeltas); err != nil {
					log.Fatal(err)
				}
				// Close syncs: every frame is acked as applied before we
				// report this pusher done.
				if err := su.Close(); err != nil {
					log.Fatal(err)
				}
				return
			}
			for start := 0; start < len(ownItems); start += chunk {
				end := min(start+chunk, len(ownItems))
				if err := client.UpdateColumns(ctx, ownItems[start:end], ownDeltas[start:end]); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
}

// demo runs the whole producer→aggregator topology in one process, over real
// HTTP on loopback with concurrent pushers, and verifies exactness against a
// reference built through a multi-producer engine.
func demo(seed uint64, n, pushers int) {
	ctx := context.Background()

	// Two daemons sharing hash seed and dimensions — the merge precondition.
	cfg := server.Config{Width: width, Depth: depth, K: topK, Seed: 7}
	addrA, closeA := startDaemon(cfg)
	addrB, closeB := startDaemon(cfg)
	defer closeA()
	defer closeB()
	clientA := server.NewClient("http://"+addrA, nil)
	clientB := server.NewClient("http://"+addrB, nil)

	// Each daemon ingests its half of the stream over HTTP from concurrent
	// pushers — daemon A through persistent streaming connections (frames
	// tunnelled over POST /v1/stream), daemon B through per-chunk POSTs, so
	// the demo proves the two ingest paths land identical counters. The
	// reference engine (same hash seed) ingests everything in-process through
	// producer handles. Its Close-time merge equals the single-threaded
	// sketch counter for counter, so it is a valid oracle.
	refEng := engine.NewTracker(engine.Config{},
		sketch.NewHeavyHitterTracker(xrand.New(7), width, depth, topK))
	for halfIdx := 0; halfIdx <= 1; halfIdx++ {
		client, streamTarget := clientA, "http://"+addrA
		if halfIdx == 1 {
			client, streamTarget = clientB, ""
		}
		items, deltas := streamHalf(seed, n, halfIdx)
		pushConcurrently(client, streamTarget, items, deltas, pushers, refEng)
	}
	reference, err := refEng.Close()
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate: A pulls B's snapshot and folds it in.
	snap, err := clientB.Snapshot(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := clientA.Merge(ctx, snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon A merged %d snapshot bytes from daemon B\n", len(snap))

	// Exactness check: every estimate from the merged daemon must equal the
	// reference's, and the top-k must agree.
	maxDev := 0.0
	items := make([]uint64, 0, 256)
	for item := uint64(0); item < 1<<20; item += 1<<12 + 7 {
		items = append(items, item)
	}
	for _, ic := range reference.TopK() {
		items = append(items, ic.Item)
	}
	estimates, err := clientA.Query(ctx, items...)
	if err != nil {
		log.Fatal(err)
	}
	for i, item := range items {
		maxDev = math.Max(maxDev, math.Abs(estimates[i]-reference.Estimate(item)))
	}

	fmt.Printf("checked %d point queries against the single-process reference\n", len(items))
	fmt.Printf("max deviation: %g (linearity says this must be exactly 0)\n", maxDev)
	ranked, err := clientA.TopK(ctx, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("merged top-5:")
	for _, ic := range ranked {
		fmt.Printf("  item %-12d estimate %d (exact-from-reference %d)\n",
			ic.Item, ic.Count, int64(reference.Estimate(ic.Item)+0.5))
	}
	if maxDev != 0 {
		log.Fatal("aggregate: merged estimates deviate from the reference — linearity violated")
	}
}

// startDaemon serves a server.Server on a fresh loopback port.
func startDaemon(cfg server.Config) (addr string, closeFn func()) {
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return ln.Addr().String(), func() {
		hs.Close()
		srv.Close()
	}
}

// streamHalf deterministically generates the full Zipf stream and returns
// the requested half as key/delta columns, so independent processes sharing
// -seed and -n split the work without coordinating.
func streamHalf(seed uint64, n, half int) ([]uint64, []float64) {
	s := stream.Zipf(xrand.New(seed), 1<<20, n, 1.1)
	items := make([]uint64, 0, n/2+1)
	deltas := make([]float64, 0, n/2+1)
	for i, u := range s.Updates {
		if i%2 == half {
			items = append(items, u.Item)
			deltas = append(deltas, float64(u.Delta))
		}
	}
	return items, deltas
}
