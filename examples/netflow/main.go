// Netflow: per-flow traffic accounting with sketches (the survey's §1
// motivation from network measurement, [EV02, FCAB98]).
//
// A router cannot afford one counter per flow. This example synthesizes a
// heavy-tailed packet trace (a few elephant flows, many mice), feeds it to a
// Count-Min-backed heavy-hitter tracker and to a SpaceSaving summary in a
// single pass, and compares what they report against exact per-flow counts.
//
// Run with: go run ./examples/netflow
package main

import (
	"fmt"

	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func main() {
	r := xrand.New(7)

	// Synthetic trace: 50k flows with Pareto(1.3) sizes, mean 12 packets.
	trace := stream.Flows(r, 1<<32, 50_000, 12, 1.3)
	fmt.Printf("synthetic trace: %d packets from up to %d flows\n\n", trace.Len(), 50_000)

	// One pass, three structures.
	tracker := sketch.NewHeavyHitterTracker(r, 8192, 4, 32) // Count-Min + heap
	ss := sketch.NewSpaceSaving(1024)
	exact := stream.NewExactCounter()
	for _, pkt := range trace.Updates {
		tracker.Update(pkt.Item, float64(pkt.Delta))
		ss.Update(pkt.Item, pkt.Delta)
		exact.Update(pkt.Item, pkt.Delta)
	}

	const phi = 0.002 // report flows with >= 0.2% of the packets
	truth := exact.HeavyHitters(phi)
	fmt.Printf("flows with at least %.1f%% of the traffic (exact): %d\n", phi*100, len(truth))
	fmt.Printf("exact counting needed %d flow entries; the sketch uses %d counters, SpaceSaving %d entries\n\n",
		exact.DistinctItems(), tracker.SpaceCounters(), 1024)

	fmt.Printf("%-14s %10s %12s %12s %12s\n", "flow", "exact", "count-min", "spacesaving", "cm overest%")
	for i, ic := range truth {
		if i >= 10 {
			break
		}
		cmEst := tracker.Estimate(ic.Item)
		ssEst := ss.Estimate(ic.Item)
		fmt.Printf("flow-%-9d %10d %12.0f %12d %11.2f%%\n",
			ic.Item, ic.Count, cmEst, ssEst, 100*(cmEst-float64(ic.Count))/float64(ic.Count))
	}

	// Recall of the single-pass tracker versus the exact answer.
	reported := map[uint64]bool{}
	for _, ic := range tracker.HeavyHitters(phi) {
		reported[ic.Item] = true
	}
	hit := 0
	for _, ic := range truth {
		if reported[ic.Item] {
			hit++
		}
	}
	fmt.Printf("\ntracker recall at phi=%.3f: %d/%d heavy flows found in a single pass\n", phi, hit, len(truth))
}
