// Imaging: compressed sensing of a sparse "image" (the survey's §2
// application: recover a sparse signal from a small number of linear
// measurements).
//
// The example builds a synthetic 64x64 image that is sparse in the pixel
// basis (a few bright points on a dark background — a star field / particle
// image), measures it with a sparse hashing matrix using far fewer
// measurements than pixels, and reconstructs it with sparse matching pursuit.
// It then repeats the measurement with a dense Gaussian matrix and OMP to
// show the dense baseline reaches similar quality at a much higher
// measurement-operator cost.
//
// Run with: go run ./examples/imaging
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cs"
	"repro/internal/mat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

const (
	side   = 64
	pixels = side * side
	stars  = 25
)

func main() {
	r := xrand.New(11)

	// A sparse image: `stars` bright pixels.
	image := cs.NonNegativeSparseSignal(r, pixels, stars, 100)

	// Sparse hashing measurements: 8·k buckets per repetition, 5 repetitions.
	measure := core.NewHashMatrix(r, pixels, 8*stars, 5, core.WithSigns())
	m, _ := measure.Dims()
	y := measure.MulVec(image)

	start := time.Now()
	recovered, err := (cs.SMP{Iters: 50}).Recover(measure, y, stars)
	if err != nil {
		panic(err)
	}
	sparseTime := time.Since(start)

	fmt.Printf("image: %dx%d pixels, %d non-zeros\n", side, side, stars)
	fmt.Printf("sparse hashing matrix: %d measurements (%.1f%% of the pixels)\n", m, 100*float64(m)/pixels)
	fmt.Printf("  SMP recovery: relative error %.2e, support recovered: %v, time %s\n\n",
		vec.RelativeError(image, recovered), cs.SupportRecovered(image, recovered), sparseTime.Round(time.Microsecond))

	// Dense Gaussian baseline with the same number of measurements.
	gauss := mat.NewGaussian(r, m, pixels)
	yg := gauss.MulVec(image)
	start = time.Now()
	recoveredOMP, err := (cs.OMP{}).Recover(gauss, yg, stars)
	if err != nil {
		panic(err)
	}
	denseTime := time.Since(start)
	fmt.Printf("dense Gaussian matrix, same m=%d:\n", m)
	fmt.Printf("  OMP recovery: relative error %.2e, support recovered: %v, time %s\n\n",
		vec.RelativeError(image, recoveredOMP), cs.SupportRecovered(image, recoveredOMP), denseTime.Round(time.Microsecond))

	fmt.Println("reconstruction (o = recovered star, . = background), downsampled 4x:")
	printThumbnail(recovered)
}

// printThumbnail renders a coarse ASCII view of the recovered image.
func printThumbnail(img []float64) {
	const step = 4
	for row := 0; row < side; row += step {
		line := make([]byte, 0, side/step)
		for col := 0; col < side; col += step {
			bright := false
			for dr := 0; dr < step; dr++ {
				for dc := 0; dc < step; dc++ {
					if img[(row+dr)*side+col+dc] > 1 {
						bright = true
					}
				}
			}
			if bright {
				line = append(line, 'o')
			} else {
				line = append(line, '.')
			}
		}
		fmt.Println(string(line))
	}
}
