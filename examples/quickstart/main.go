// Quickstart: a 60-second tour of the library.
//
// It shows the same hashing idea doing three different jobs:
//  1. counting frequent items in a stream with a Count-Min sketch,
//  2. recovering a sparse vector from linear measurements (compressed
//     sensing) with the very same kind of matrix, and
//  3. recovering a sparse Fourier spectrum by hashing in the frequency
//     domain.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/core"
	"repro/internal/cs"
	"repro/internal/fourier"
	"repro/internal/sfft"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func main() {
	r := xrand.New(42)

	// --- 1. Heavy hitters on a stream -----------------------------------
	fmt.Println("1. heavy hitters with a Count-Min sketch")
	s := stream.Zipf(r, 1<<16, 200_000, 1.2)
	cm := sketch.NewCountMin(r, 2048, 4)
	exact := stream.NewExactCounter()
	// Batch-first ingestion: hand the stream to the sketch as parallel
	// key/delta columns. UpdateBatch drives the vectorizable hash kernels
	// and is bit-identical to calling cm.Update once per item — just faster.
	items := make([]uint64, len(s.Updates))
	deltas := make([]float64, len(s.Updates))
	for i, u := range s.Updates {
		items[i], deltas[i] = u.Item, float64(u.Delta)
		exact.Update(u.Item, u.Delta)
	}
	cm.UpdateBatch(items, deltas)
	fmt.Printf("   sketch: %d counters instead of %d exact entries\n", cm.Size(), exact.DistinctItems())
	for _, ic := range exact.TopK(3) {
		fmt.Printf("   item %6d  true count %6d   sketch estimate %6.0f\n", ic.Item, ic.Count, cm.Estimate(ic.Item))
	}

	// --- 2. Compressed sensing with the same hashing matrix --------------
	fmt.Println("\n2. compressed sensing with a sparse hashing matrix")
	n, k := 10_000, 12
	measure := core.NewHashMatrix(r, n, 16*k, 5, core.WithSigns())
	x := cs.RandomSparseSignal(r, n, k, 10)
	y := measure.MulVec(x) // m = 16k*5 measurements, nnz-time product
	xhat, err := (cs.SMP{Iters: 25}).Recover(measure, y, k)
	if err != nil {
		panic(err)
	}
	m, _ := measure.Dims()
	fmt.Printf("   recovered a %d-sparse vector of dimension %d from %d measurements\n", k, n, m)
	fmt.Printf("   relative l2 error: %.2e\n", vec.RelativeError(x, xhat))

	// --- 3. Sparse Fourier transform --------------------------------------
	fmt.Println("\n3. sparse FFT: hashing in the frequency domain")
	nfft, kfft := 1<<16, 20
	spec := make([]complex128, nfft)
	for _, f := range r.Sample(nfft, kfft) {
		spec[f] = cmplx.Rect(1+r.Float64(), 2*math.Pi*r.Float64())
	}
	signal := fourier.InverseFFT(spec)
	coeffs, err := sfft.Exact(signal, kfft, sfft.Config{}, r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("   recovered %d of %d spectrum coefficients without computing a full FFT\n", len(coeffs), kfft)
	fmt.Printf("   spectrum error: %.2e\n", vec.CRelativeError(spec, sfft.ToDense(coeffs, nfft)))
}
