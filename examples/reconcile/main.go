// Reconcile: set reconciliation with an invertible Bloom lookup table
// (the survey's §2 reference [GM11]).
//
// Two replicas hold almost identical sets of keys (say, object IDs in a
// distributed store). Instead of exchanging the full sets, each side inserts
// its keys into an IBLT sized for the expected number of *differences*; one
// replica sends its table (a few KiB), the other subtracts its own keys and
// decodes the symmetric difference exactly. The message size depends only on
// the difference, not on the set sizes — the same "sketch the vector, decode
// the sparse part" pattern as compressed sensing.
//
// Run with: go run ./examples/reconcile
package main

import (
	"fmt"
	"sort"

	"repro/internal/sketch"
	"repro/internal/xrand"
)

func main() {
	r := xrand.New(9)

	const (
		common    = 200_000 // keys both replicas hold
		onlyA     = 40      // keys only replica A holds
		onlyB     = 25      // keys only replica B holds
		cells     = 256     // IBLT cells exchanged (~8 KiB on the wire)
		hashCount = 4
	)

	// Build the two key sets.
	keysA := map[uint64]bool{}
	keysB := map[uint64]bool{}
	for i := 0; i < common; i++ {
		k := r.Uint64() >> 3
		keysA[k] = true
		keysB[k] = true
	}
	var wantOnlyA, wantOnlyB []uint64
	for i := 0; i < onlyA; i++ {
		k := r.Uint64() >> 3
		keysA[k] = true
		wantOnlyA = append(wantOnlyA, k)
	}
	for i := 0; i < onlyB; i++ {
		k := r.Uint64() >> 3
		keysB[k] = true
		wantOnlyB = append(wantOnlyB, k)
	}

	// Replica A builds its table; replica B subtracts its own keys from the
	// received table (insert with -1) and decodes.
	// Both sides must construct the IBLT with the same seed/hash functions.
	tableSeed := uint64(123)
	table := sketch.NewIBLT(xrand.New(tableSeed), cells, hashCount)
	for k := range keysA {
		table.Insert(k)
	}
	for k := range keysB {
		table.Delete(k)
	}

	diff, err := table.ListEntries()
	if err != nil {
		fmt.Println("decode failed — the difference exceeded the table capacity; retry with more cells")
		return
	}

	var gotOnlyA, gotOnlyB []uint64
	for k, count := range diff {
		switch {
		case count > 0:
			gotOnlyA = append(gotOnlyA, k)
		case count < 0:
			gotOnlyB = append(gotOnlyB, k)
		}
	}
	sort.Slice(gotOnlyA, func(i, j int) bool { return gotOnlyA[i] < gotOnlyA[j] })
	sort.Slice(gotOnlyB, func(i, j int) bool { return gotOnlyB[i] < gotOnlyB[j] })

	fmt.Printf("replica A: %d keys, replica B: %d keys\n", len(keysA), len(keysB))
	fmt.Printf("exchanged one IBLT with %d cells (about %d KiB) instead of %d keys\n\n",
		cells, cells*24/1024, len(keysA))
	fmt.Printf("decoded symmetric difference: %d keys only in A (expected %d), %d only in B (expected %d)\n",
		len(gotOnlyA), onlyA, len(gotOnlyB), onlyB)

	ok := len(gotOnlyA) == onlyA && len(gotOnlyB) == onlyB && containsAll(gotOnlyA, wantOnlyA) && containsAll(gotOnlyB, wantOnlyB)
	fmt.Printf("reconciliation exact: %v\n", ok)
}

func containsAll(got, want []uint64) bool {
	set := map[uint64]bool{}
	for _, k := range got {
		set[k] = true
	}
	for _, k := range want {
		if !set[k] {
			return false
		}
	}
	return true
}
