// Features: the hashing trick for machine-learning features and
// sketch-and-solve regression (the survey's §3: dimensionality reduction and
// fast numerical linear algebra with sparse embeddings).
//
// The example builds a bag-of-words style dataset whose raw feature space is
// huge and sparse, hashes it into a modest fixed dimension with the feature
// hasher, and fits a least-squares model two ways: exactly on the hashed
// features, and with sketch-and-solve (embedding the examples themselves with
// a sparse JL transform before solving). It reports how little accuracy the
// sketched solve gives up.
//
// Run with: go run ./examples/features
package main

import (
	"fmt"
	"time"

	"repro/internal/jl"
	"repro/internal/linalg"
	"repro/internal/mat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func main() {
	r := xrand.New(3)

	const (
		examples  = 6000
		vocab     = 50_000 // raw (conceptual) feature space
		hashedDim = 64     // dimensionality after the hashing trick
		wordsPer  = 30
	)

	// A hidden linear model over a few "important" words.
	importantWords := []string{"latency", "error", "retry", "timeout", "cache"}
	weights := []float64{3, -2, 1.5, -1, 0.5}

	hasher := jl.NewFeatureHasher(r, hashedDim)

	// Build the design matrix of hashed features and the response.
	x := mat.NewDense(examples, hashedDim)
	y := make([]float64, examples)
	vocabulary := make([]string, vocab/100) // sampled background vocabulary
	for i := range vocabulary {
		vocabulary[i] = fmt.Sprintf("word-%d", r.Intn(vocab))
	}
	for i := 0; i < examples; i++ {
		doc := map[string]float64{}
		for w := 0; w < wordsPer; w++ {
			doc[vocabulary[r.Intn(len(vocabulary))]] += 1
		}
		var target float64
		for wi, word := range importantWords {
			if r.Bernoulli(0.3) {
				count := float64(1 + r.Intn(3))
				doc[word] += count
				target += weights[wi] * count
			}
		}
		target += 0.1 * r.NormFloat64()
		hashed := hasher.Hash(doc)
		for j := 0; j < hashedDim; j++ {
			x.Set(i, j, hashed[j])
		}
		y[i] = target
	}

	// Exact least squares on the hashed features.
	start := time.Now()
	exactCoef, err := linalg.LeastSquares(x, y)
	if err != nil {
		panic(err)
	}
	exactTime := time.Since(start)

	// Sketch-and-solve: compress the 6000 examples to 1280 sketched rows.
	start = time.Now()
	sketchCoef, err := jl.SketchedLeastSquares(r, x, y, 20*hashedDim)
	if err != nil {
		panic(err)
	}
	sketchTime := time.Since(start)

	exactResid := vec.Norm2(vec.Sub(y, x.MulVec(exactCoef)))
	sketchResid := vec.Norm2(vec.Sub(y, x.MulVec(sketchCoef)))

	fmt.Printf("dataset: %d examples, conceptual vocabulary %d, hashed to %d dimensions\n\n", examples, vocab, hashedDim)
	fmt.Printf("%-28s %14s %12s\n", "method", "residual |Xw-y|", "time")
	fmt.Printf("%-28s %14.3f %12s\n", "exact least squares", exactResid, exactTime.Round(time.Microsecond))
	fmt.Printf("%-28s %14.3f %12s\n", "sketch-and-solve (20x cols)", sketchResid, sketchTime.Round(time.Microsecond))
	fmt.Printf("\nresidual ratio sketched/exact: %.4f (1.0 means no loss)\n\n", sketchResid/exactResid)

	// Sanity check that the hashed model actually predicts: correlation of
	// predictions with targets on fresh data.
	var num, dy, dp float64
	for i := 0; i < 1000; i++ {
		doc := map[string]float64{}
		var target float64
		for wi, word := range importantWords {
			if r.Bernoulli(0.3) {
				doc[word] += 1
				target += weights[wi]
			}
		}
		doc[vocabulary[r.Intn(len(vocabulary))]] += 1
		pred := vec.Dot(hasher.Hash(doc), sketchCoef)
		num += target * pred
		dy += target * target
		dp += pred * pred
	}
	if dy > 0 && dp > 0 {
		fmt.Printf("out-of-sample correlation between prediction and target: %.3f\n", num/(sqrt(dy)*sqrt(dp)))
	}
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}
