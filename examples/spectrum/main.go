// Spectrum: sparse Fourier transform of a frequency-sparse radio-like signal
// (the survey's §4: signals in communication and imaging often have sparse
// spectra, so the DFT can be computed much faster than the FFT).
//
// The example synthesizes a signal containing a handful of carrier tones
// buried in a long observation window plus mild noise, recovers the tones
// with the robust sparse FFT, and cross-checks both the detected frequencies
// and the running time against the full FFT.
//
// Run with: go run ./examples/spectrum
//
// With -addr the recovery runs on a sketchd daemon instead: the samples are
// posted to its /v1/spectrum endpoint with the same tuning (robust transform,
// wide buckets), exercising the served sparse-FFT path end to end. The
// observation window shrinks to 2^16 samples there, so the JSON body fits
// the daemon's default 8 MiB cap:
//
//	go run ./cmd/sketchd &
//	go run ./examples/spectrum -addr 127.0.0.1:7600
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"strings"
	"time"

	"repro/internal/fourier"
	"repro/internal/server"
	"repro/internal/sfft"
	"repro/internal/xrand"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running sketchd (host:port or http://host:port); empty transforms in-process")
	flag.Parse()

	r := xrand.New(5)

	const carriers = 12
	// Per-sample noise. The carriers' time-domain amplitude is about
	// carriers/n, so this keeps the per-bucket SNR of the sparse transform
	// comfortably above 1 while still being visible noise.
	const noiseStd = 1e-5
	n := 1 << 18 // about 262k samples
	if *addr != "" {
		n = 1 << 16
	}

	// Carrier tones at random frequencies with random amplitudes and phases.
	type tone struct {
		freq int
		amp  float64
	}
	var tones []tone
	spec := make([]complex128, n)
	for _, f := range r.Sample(n, carriers) {
		amp := 0.5 + 1.5*r.Float64()
		spec[f] = cmplx.Rect(amp, 2*math.Pi*r.Float64())
		tones = append(tones, tone{freq: f, amp: amp})
	}
	sort.Slice(tones, func(i, j int) bool { return tones[i].freq < tones[j].freq })
	signal := fourier.InverseFFT(spec)
	for i := range signal {
		signal[i] += complex(noiseStd*r.NormFloat64(), noiseStd*r.NormFloat64())
	}

	// Sparse recovery. A generous bucket count (16·k) integrates more samples
	// per bucket, which lowers the per-bucket noise floor enough to pull the
	// weakest carriers out of the noise. The same tuning rides along in the
	// /v1/spectrum request when the transform is served.
	var recovered []sfft.Coefficient
	var err error
	start := time.Now()
	if *addr != "" {
		recovered, err = servedSpectrum(*addr, signal, carriers)
	} else {
		recovered, err = sfft.Robust(signal, carriers, sfft.Config{Rounds: 8, BucketFactor: 16}, r)
	}
	if err != nil {
		panic(err)
	}
	sparseTime := time.Since(start)

	// Full FFT baseline.
	start = time.Now()
	full := sfft.FFTTopK(signal, carriers)
	fullTime := time.Since(start)

	label := "robust sparse FFT: "
	if *addr != "" {
		label = "served /v1/spectrum:"
	}
	fmt.Printf("observation window: %d samples, %d carrier tones, noise std %g\n\n", n, carriers, noiseStd)
	fmt.Printf("%s %10s\n", label, sparseTime.Round(time.Microsecond))
	fmt.Printf("full FFT + top-k:   %10s\n", fullTime.Round(time.Microsecond))
	fmt.Printf("speedup: %.1fx\n\n", fullTime.Seconds()/sparseTime.Seconds())

	recoveredAt := map[int]complex128{}
	for _, c := range recovered {
		recoveredAt[c.Freq] = c.Value
	}
	fullAt := map[int]complex128{}
	for _, c := range full {
		fullAt[c.Freq] = c.Value
	}

	fmt.Printf("%10s %10s %12s %12s %8s\n", "freq", "true amp", "sparse amp", "fft amp", "found")
	found := 0
	for _, tn := range tones {
		sparseAmp := cmplx.Abs(recoveredAt[tn.freq])
		fullAmp := cmplx.Abs(fullAt[tn.freq])
		ok := sparseAmp > 0
		if ok {
			found++
		}
		fmt.Printf("%10d %10.3f %12.3f %12.3f %8v\n", tn.freq, tn.amp, sparseAmp, fullAmp, ok)
	}
	fmt.Printf("\ndetected %d of %d carriers without computing the full spectrum\n", found, carriers)
}

// servedSpectrum posts the samples to a sketchd's /v1/spectrum with the same
// tuning the in-process path uses (robust transform, 16·k buckets).
func servedSpectrum(addr string, signal []complex128, k int) ([]sfft.Coefficient, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	req := server.SpectrumRequest{
		Signal:       make([]float64, len(signal)),
		SignalImag:   make([]float64, len(signal)),
		K:            k,
		Algo:         "robust",
		Seed:         5,
		Rounds:       8,
		BucketFactor: 16,
	}
	for i, v := range signal {
		req.Signal[i] = real(v)
		req.SignalImag[i] = imag(v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resp, err := server.NewClient(addr, nil).Spectrum(ctx, req)
	if err != nil {
		return nil, err
	}
	out := make([]sfft.Coefficient, len(resp.Coefficients))
	for i, c := range resp.Coefficients {
		out[i] = sfft.Coefficient{Freq: c.Freq, Value: complex(c.Re, c.Im)}
	}
	return out, nil
}
