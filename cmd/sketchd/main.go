// Command sketchd is an HTTP sketch-ingestion daemon: it owns a concurrent
// sharded heavy-hitter engine (internal/engine over a Count-Min sketch) and
// serves batched updates, point queries, top-k reports, and binary snapshots
// that merge exactly across process boundaries. Update handlers ingest
// concurrently across -producers engine handles — there is no global lock on
// the write path, and linearity keeps the merged counters exact regardless
// of how requests interleave.
//
// Because sketches are linear, a fleet of sketchd processes started with the
// same -seed, -width and -depth can each ingest a slice of the stream and
// reconcile by shipping /v1/snapshot bytes into a peer's /v1/merge; the
// merged daemon then answers every query exactly as if it had seen the whole
// stream itself. With -snapshot-dir the daemon also ships its state to disk
// (periodically with -snapshot-every, and on shutdown), and recovers it
// bit-identically on restart.
//
// Usage:
//
//	sketchd -addr :7600 -width 4096 -depth 4 -k 64
//	sketchd -addr 127.0.0.1:7601 -snapshot-dir /var/lib/sketchd -snapshot-every 30s
//
// API (see internal/server):
//
//	POST /v1/update    {"updates":[{"item":7,"delta":2}]} or a binary batch
//	GET  /v1/query     ?item=7&item=8
//	GET  /v1/topk      ?k=10 or ?phi=0.001
//	GET  /v1/snapshot  versioned binary sketch encoding
//	POST /v1/merge     a peer's snapshot bytes
//	GET  /v1/stats, GET /v1/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7600", "listen address (host:port; port 0 picks a free port)")
		width         = flag.Int("width", 4096, "Count-Min width (counters per row)")
		depth         = flag.Int("depth", 4, "Count-Min depth (rows)")
		k             = flag.Int("k", 64, "heavy-hitter candidate capacity")
		seed          = flag.Uint64("seed", 1, "hash seed; daemons that merge snapshots must share it")
		workers       = flag.Int("workers", 0, "ingestion shard goroutines (0 = GOMAXPROCS)")
		producers     = flag.Int("producers", 0, "parallel ingestion lanes for /v1/update handlers (0 = GOMAXPROCS)")
		snapshotDir   = flag.String("snapshot-dir", "", "directory for snapshot shipping and startup recovery")
		snapshotEvery = flag.Duration("snapshot-every", 0, "period of background snapshots to -snapshot-dir (0 = only on shutdown)")
		maxBody       = flag.Int64("max-body", 0, "request body cap in bytes (0 = 8 MiB)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "sketchd: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		Width:         *width,
		Depth:         *depth,
		K:             *k,
		Seed:          *seed,
		Engine:        engine.Config{Workers: *workers},
		Producers:     *producers,
		SnapshotDir:   *snapshotDir,
		SnapshotEvery: *snapshotEvery,
		MaxBodyBytes:  *maxBody,
		Logf:          logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// Print the bound address on stdout so scripts using port 0 can find it.
	fmt.Printf("listening on %s (countmin %dx%d, k=%d, seed=%d)\n",
		ln.Addr(), *width, *depth, *k, *seed)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("received %v, shutting down", sig)
	case err := <-errc:
		logger.Printf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	// Close ships the final snapshot when -snapshot-dir is set.
	if err := srv.Close(); err != nil {
		logger.Fatalf("close: %v", err)
	}
}
