// Command sketchd is an HTTP sketch-ingestion daemon: it owns a concurrent
// sharded heavy-hitter engine (internal/engine over a Count-Min sketch) and
// serves batched updates, point queries, top-k reports, and binary snapshots
// that merge exactly across process boundaries. Update handlers ingest
// concurrently across -producers engine handles — there is no global lock on
// the write path, and linearity keeps the merged counters exact regardless
// of how requests interleave.
//
// Because sketches are linear, a fleet of sketchd processes started with the
// same -seed, -width and -depth can each ingest a slice of the stream and
// reconcile exactly. Two mechanisms exist. Pull: ship /v1/snapshot bytes
// into a peer's /v1/merge for a one-shot full-state fold-in (bootstrap, ad
// hoc aggregation). Push: start every daemon with -peers naming the others
// and they gossip continuously — each daemon ships the *difference* between
// its current state and the last state each peer acknowledged (a valid
// sketch in its own right, mostly zero counters, shipped compressed) to
// /v1/delta every -gossip-every, and a per-sender generation watermark
// makes retries and reordering safe, so the whole mesh converges to exactly
// the sketch one process would have built. With -snapshot-dir the daemon
// also ships its state to disk (periodically with -snapshot-every, and on
// shutdown), and recovers it bit-identically on restart. See
// docs/CLUSTER.md for the operator guide.
//
// Usage:
//
//	sketchd -addr :7600 -width 4096 -depth 4 -k 64
//	sketchd -addr :7600 -stream-addr :7700   # raw TCP streaming ingest listener
//	sketchd -addr 127.0.0.1:7601 -snapshot-dir /var/lib/sketchd -snapshot-every 30s
//	sketchd -addr 127.0.0.1:7602 -peers 127.0.0.1:7601,127.0.0.1:7603 -gossip-every 1s
//
// The daemon also serves the survey's recovery algorithms directly from its
// live counters: /v1/recover inverts the sketch with a configurable
// internal/cs recoverer (-recover-algos gates which ones, -recover-iters
// sets the default iteration budget), /v1/setquery answers calibrated
// estimates over a caller-supplied candidate support, and /v1/spectrum runs
// the sparse Fourier transform of internal/sfft over a posted signal. See
// docs/API.md for the full endpoint reference.
//
// API (see internal/server and docs/API.md):
//
//	POST /v1/update    {"updates":[{"item":7,"delta":2}]} or a binary batch
//	POST /v1/stream    persistent-connection framed ingest (also raw TCP via -stream-addr)
//	GET  /v1/query     ?item=7&item=8
//	GET  /v1/topk      ?k=10 or ?phi=0.001
//	GET  /v1/recover   ?algo=smp&k=16&universe=65536 (also POST with a JSON body)
//	POST /v1/setquery  {"support":[7,8,9]} calibrated estimates over a support set
//	POST /v1/spectrum  {"signal":[...], "k":4} sparse Fourier support
//	GET  /v1/snapshot  versioned binary sketch encoding
//	POST /v1/merge     a peer's snapshot bytes
//	POST /v1/delta     a gossip replication frame (sent by peers' replicators)
//	GET  /v1/stats     counters, sketch shape, per-peer replication lag
//	GET  /v1/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7600", "listen address (host:port; port 0 picks a free port)")
		streamAddr    = flag.String("stream-addr", "", "raw TCP listen address for persistent-connection streaming ingest (empty = HTTP only; POST /v1/stream always works)")
		width         = flag.Int("width", 4096, "Count-Min width (counters per row)")
		depth         = flag.Int("depth", 4, "Count-Min depth (rows)")
		k             = flag.Int("k", 64, "heavy-hitter candidate capacity")
		seed          = flag.Uint64("seed", 1, "hash seed; daemons that merge snapshots must share it")
		workers       = flag.Int("workers", 0, "ingestion shard goroutines (0 = GOMAXPROCS)")
		partition     = flag.Bool("partition", false, "key-partitioned engine mode: workers share one column-partitioned sketch (1x memory) instead of a full clone each (workers x memory); reads are bit-identical either way")
		producers     = flag.Int("producers", 0, "parallel ingestion lanes for /v1/update handlers (0 = GOMAXPROCS)")
		snapshotDir   = flag.String("snapshot-dir", "", "directory for snapshot shipping and startup recovery")
		snapshotEvery = flag.Duration("snapshot-every", 0, "period of background snapshots to -snapshot-dir (0 = only on shutdown)")
		maxBody       = flag.Int64("max-body", 0, "request body cap in bytes (0 = 8 MiB)")
		peers         = flag.String("peers", "", "comma-separated peer base URLs (host:port or http://host:port) to gossip deltas to; list every other daemon in the mesh")
		gossipEvery   = flag.Duration("gossip-every", 0, "period of delta shipping to -peers (0 = 1s when -peers is set)")
		gossipBackoff = flag.Duration("gossip-backoff-max", 0, "cap on the per-peer exponential retry backoff after transport failures (0 = 30s)")
		bootFrom      = flag.String("bootstrap-from", "", "comma-separated peer base URLs to fetch a barrier-consistent state transfer from on a cold start (the literal word \"peers\" copies -peers); the daemon serves 503 until the transfer lands")
		bootAttempts  = flag.Int("bootstrap-attempts", 0, "rounds through the -bootstrap-from list before degrading to serving empty (0 = 3)")
		bootRetry     = flag.Duration("bootstrap-retry", 0, "wait between bootstrap rounds (0 = 2s)")
		nodeID        = flag.String("node-id", "", "stable unique id for this daemon in gossip frames (default: the bound listen address)")
		recoverAlgos  = flag.String("recover-algos", "", "comma-separated recovery algorithms /v1/recover may run (subset of sketch,smp,omp,iht,ista; empty = all, first is the default)")
		recoverUni    = flag.Int("recover-universe", 0, "default signal dimension /v1/recover inverts over (0 = 65536)")
		recoverMaxK   = flag.Int("recover-max-k", 0, "cap on /v1/recover's ?k= (0 = 256)")
		recoverIters  = flag.Int("recover-iters", 0, "default iteration budget of the iterative recoverers (0 = 50)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "sketchd: ", log.LstdFlags)

	// Listen before building the server so the bound address (port 0
	// resolves here) can double as the default gossip node id.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	if *nodeID == "" {
		*nodeID = ln.Addr().String()
	}
	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	var bootList []string
	switch {
	case *bootFrom == "peers":
		bootList = append(bootList, peerList...)
	case *bootFrom != "":
		bootList = strings.Split(*bootFrom, ",")
	}
	var algoList []string
	if *recoverAlgos != "" {
		for _, a := range strings.Split(*recoverAlgos, ",") {
			if a = strings.TrimSpace(a); a != "" {
				algoList = append(algoList, a)
			}
		}
	}

	srv, err := server.New(server.Config{
		Width:              *width,
		Depth:              *depth,
		K:                  *k,
		Seed:               *seed,
		Engine:             engine.Config{Workers: *workers, Partition: *partition},
		Producers:          *producers,
		SnapshotDir:        *snapshotDir,
		SnapshotEvery:      *snapshotEvery,
		MaxBodyBytes:       *maxBody,
		Peers:              peerList,
		GossipEvery:        *gossipEvery,
		GossipBackoffMax:   *gossipBackoff,
		BootstrapFrom:      bootList,
		BootstrapAttempts:  *bootAttempts,
		BootstrapRetryWait: *bootRetry,
		NodeID:             *nodeID,
		RecoverAlgos:       algoList,
		RecoverUniverse:    *recoverUni,
		RecoverMaxK:        *recoverMaxK,
		RecoverIters:       *recoverIters,
		Logf:               logger.Printf,
	})
	if err != nil {
		ln.Close()
		logger.Fatal(err)
	}

	// Print the bound address on stdout so scripts using port 0 can find it.
	fmt.Printf("listening on %s (countmin %dx%d, k=%d, seed=%d)\n",
		ln.Addr(), *width, *depth, *k, *seed)

	if *streamAddr != "" {
		sln, err := net.Listen("tcp", *streamAddr)
		if err != nil {
			srv.Close()
			logger.Fatal(err)
		}
		fmt.Printf("streaming on %s\n", sln.Addr())
		// srv.Close tears the listener down (ServeStream registers it), so
		// the accept loop needs no extra shutdown plumbing here.
		go func() {
			if err := srv.ServeStream(sln); err != nil {
				logger.Printf("stream serve: %v", err)
			}
		}()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("received %v, shutting down", sig)
	case err := <-errc:
		logger.Printf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	// Close makes a final delta push to every -peers entry and ships the
	// final snapshot when -snapshot-dir is set.
	if err := srv.Close(); err != nil {
		logger.Fatalf("close: %v", err)
	}
}
