// Command sketchbench regenerates the experiment tables (E1–E15 in
// DESIGN.md) that reproduce the quantitative claims of the survey.
//
// Usage:
//
//	sketchbench -exp e1          # run a single experiment
//	sketchbench -exp all         # run every experiment (default)
//	sketchbench -exp e7 -quick   # reduced problem sizes
//	sketchbench -list            # list experiments and the claims they check
//
// Profiling the hot paths (then inspect with `go tool pprof`):
//
//	sketchbench -exp e13 -cpuprofile cpu.out
//	sketchbench -exp e13 -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
)

// main delegates to run so that run's defers — in particular flushing the
// CPU profile — complete before the process exits with a failure code.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment id (e1..e15) or 'all'")
		seed       = flag.Uint64("seed", 1, "random seed (identical seeds reproduce identical tables)")
		quick      = flag.Bool("quick", false, "run at reduced problem sizes")
		list       = flag.Bool("list", false, "list available experiments and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return 0
	}

	cfg := bench.Config{Seed: *seed, Quick: *quick}
	var experiments []bench.Experiment
	if strings.EqualFold(*exp, "all") {
		experiments = bench.Registry()
	} else {
		e, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sketchbench: unknown experiment %q (known: %s)\n", *exp, strings.Join(bench.IDs(), ", "))
			return 2
		}
		experiments = []bench.Experiment{e}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sketchbench: creating CPU profile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sketchbench: starting CPU profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	for _, e := range experiments {
		fmt.Printf("== %s: %s\n\n", strings.ToUpper(e.ID), e.Claim)
		for _, table := range e.Run(cfg) {
			table.Fprint(os.Stdout)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sketchbench: creating heap profile: %v\n", err)
			return 1 // the deferred StopCPUProfile still flushes the CPU profile
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sketchbench: writing heap profile: %v\n", err)
			return 1
		}
	}
	return 0
}
