// Command sketchbench regenerates the experiment tables (E1–E12 in
// DESIGN.md) that reproduce the quantitative claims of the survey.
//
// Usage:
//
//	sketchbench -exp e1          # run a single experiment
//	sketchbench -exp all         # run every experiment (default)
//	sketchbench -exp e7 -quick   # reduced problem sizes
//	sketchbench -list            # list experiments and the claims they check
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (e1..e12) or 'all'")
		seed  = flag.Uint64("seed", 1, "random seed (identical seeds reproduce identical tables)")
		quick = flag.Bool("quick", false, "run at reduced problem sizes")
		list  = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	cfg := bench.Config{Seed: *seed, Quick: *quick}
	var experiments []bench.Experiment
	if strings.EqualFold(*exp, "all") {
		experiments = bench.Registry()
	} else {
		e, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sketchbench: unknown experiment %q (known: %s)\n", *exp, strings.Join(bench.IDs(), ", "))
			os.Exit(2)
		}
		experiments = []bench.Experiment{e}
	}

	for _, e := range experiments {
		fmt.Printf("== %s: %s\n\n", strings.ToUpper(e.ID), e.Claim)
		for _, table := range e.Run(cfg) {
			table.Fprint(os.Stdout)
		}
	}
}
