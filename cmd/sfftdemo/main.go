// Command sfftdemo generates a signal with a sparse spectrum, recovers the
// spectrum with the sparse FFT, and compares the result and the running time
// against the full FFT baseline.
//
// Usage:
//
//	sfftdemo -n 262144 -k 50
//	sfftdemo -n 65536 -k 20 -noise 0.001 -robust
package main

import (
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"time"

	"repro/internal/fourier"
	"repro/internal/sfft"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func main() {
	var (
		n      = flag.Int("n", 1<<18, "signal length (power of two)")
		k      = flag.Int("k", 50, "spectrum sparsity")
		noise  = flag.Float64("noise", 0, "time-domain Gaussian noise standard deviation")
		robust = flag.Bool("robust", false, "use the noise-tolerant variant")
		seed   = flag.Uint64("seed", 1, "random seed")
		show   = flag.Int("show", 10, "number of recovered coefficients to print")
	)
	flag.Parse()

	if !fourier.IsPowerOfTwo(*n) {
		fmt.Fprintln(os.Stderr, "sfftdemo: -n must be a power of two")
		os.Exit(2)
	}
	r := xrand.New(*seed)

	// Build a k-sparse spectrum and synthesize the time signal.
	spec := make([]complex128, *n)
	truth := make([]sfft.Coefficient, 0, *k)
	for _, f := range r.Sample(*n, *k) {
		v := cmplx.Rect(1+r.Float64(), 2*math.Pi*r.Float64())
		spec[f] = v
		truth = append(truth, sfft.Coefficient{Freq: f, Value: v})
	}
	x := fourier.InverseFFT(spec)
	if *noise > 0 {
		for i := range x {
			x[i] += complex(*noise*r.NormFloat64(), *noise*r.NormFloat64())
		}
	}
	sfft.SortCoefficients(truth)

	// Sparse recovery.
	var recovered []sfft.Coefficient
	var err error
	algo := "exact sparse FFT"
	start := time.Now()
	if *robust {
		algo = "robust sparse FFT"
		recovered, err = sfft.Robust(x, *k, sfft.Config{}, r)
	} else {
		recovered, err = sfft.Exact(x, *k, sfft.Config{}, r)
	}
	sparseTime := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfftdemo: %v\n", err)
		os.Exit(1)
	}

	// Dense baseline.
	start = time.Now()
	baseline := sfft.FFTTopK(x, *k)
	fullTime := time.Since(start)

	errSparse := vec.CRelativeError(sfft.ToDense(truth, *n), sfft.ToDense(recovered, *n))
	errFull := vec.CRelativeError(sfft.ToDense(truth, *n), sfft.ToDense(baseline, *n))

	fmt.Printf("signal length n = %d, sparsity k = %d, noise std = %g\n\n", *n, *k, *noise)
	fmt.Printf("%-22s %12s %14s\n", "method", "time", "spectrum error")
	fmt.Printf("%-22s %12s %14.6f\n", algo, sparseTime.Round(time.Microsecond), errSparse)
	fmt.Printf("%-22s %12s %14.6f\n", "full FFT + top-k", fullTime.Round(time.Microsecond), errFull)
	fmt.Printf("\nspeedup: %.2fx\n\n", fullTime.Seconds()/sparseTime.Seconds())

	limit := *show
	if limit > len(recovered) {
		limit = len(recovered)
	}
	fmt.Printf("largest %d recovered coefficients:\n", limit)
	fmt.Printf("%10s %22s %22s\n", "freq", "recovered", "true")
	trueAt := map[int]complex128{}
	for _, c := range truth {
		trueAt[c.Freq] = c.Value
	}
	for _, c := range recovered[:limit] {
		fmt.Printf("%10d %22s %22s\n", c.Freq, fmtC(c.Value), fmtC(trueAt[c.Freq]))
	}
}

func fmtC(v complex128) string {
	return fmt.Sprintf("%.3f%+.3fi", real(v), imag(v))
}
