// Command sfftdemo generates a signal with a sparse spectrum, recovers the
// spectrum with the sparse FFT, and compares the result and the running time
// against the full FFT baseline. With -addr it posts the signal to a running
// sketchd's /v1/spectrum instead of transforming in-process, exercising the
// served sparse-FFT path end to end (the baseline and the error report stay
// local either way).
//
// Usage:
//
//	sfftdemo -n 262144 -k 50
//	sfftdemo -n 65536 -k 20 -noise 0.001 -robust
//	sfftdemo -addr 127.0.0.1:7600 -k 20
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"strings"
	"time"

	"repro/internal/fourier"
	"repro/internal/server"
	"repro/internal/sfft"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func main() {
	var (
		n      = flag.Int("n", 1<<18, "signal length (power of two); with -addr the default drops to 65536 to fit the daemon's body cap")
		k      = flag.Int("k", 50, "spectrum sparsity")
		noise  = flag.Float64("noise", 0, "time-domain Gaussian noise standard deviation")
		robust = flag.Bool("robust", false, "use the noise-tolerant variant")
		seed   = flag.Uint64("seed", 1, "random seed")
		show   = flag.Int("show", 10, "number of recovered coefficients to print")
		addr   = flag.String("addr", "", "base URL of a running sketchd (host:port or http://host:port); empty transforms in-process")
	)
	flag.Parse()

	// Served mode ships the samples as JSON; the default 2^18-sample window
	// would overflow sketchd's default 8 MiB body cap, so shrink the default
	// (an explicit -n still wins).
	if *addr != "" {
		nSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "n" {
				nSet = true
			}
		})
		if !nSet {
			*n = 1 << 16
		}
	}

	if !fourier.IsPowerOfTwo(*n) {
		fmt.Fprintln(os.Stderr, "sfftdemo: -n must be a power of two")
		os.Exit(2)
	}
	r := xrand.New(*seed)

	// Build a k-sparse spectrum and synthesize the time signal.
	spec := make([]complex128, *n)
	truth := make([]sfft.Coefficient, 0, *k)
	for _, f := range r.Sample(*n, *k) {
		v := cmplx.Rect(1+r.Float64(), 2*math.Pi*r.Float64())
		spec[f] = v
		truth = append(truth, sfft.Coefficient{Freq: f, Value: v})
	}
	x := fourier.InverseFFT(spec)
	if *noise > 0 {
		for i := range x {
			x[i] += complex(*noise*r.NormFloat64(), *noise*r.NormFloat64())
		}
	}
	sfft.SortCoefficients(truth)

	// Sparse recovery: in-process, or served by a sketchd's /v1/spectrum.
	var recovered []sfft.Coefficient
	var err error
	var algo string
	var sparseTime time.Duration
	if *addr != "" {
		algo = "served sparse FFT"
		start := time.Now()
		recovered, err = servedSpectrum(*addr, x, *k, *robust, *seed)
		sparseTime = time.Since(start)
	} else {
		algo = "exact sparse FFT"
		start := time.Now()
		if *robust {
			algo = "robust sparse FFT"
			recovered, err = sfft.Robust(x, *k, sfft.Config{}, r)
		} else {
			recovered, err = sfft.Exact(x, *k, sfft.Config{}, r)
		}
		sparseTime = time.Since(start)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfftdemo: %v\n", err)
		os.Exit(1)
	}

	// Dense baseline.
	start := time.Now()
	baseline := sfft.FFTTopK(x, *k)
	fullTime := time.Since(start)

	errSparse := vec.CRelativeError(sfft.ToDense(truth, *n), sfft.ToDense(recovered, *n))
	errFull := vec.CRelativeError(sfft.ToDense(truth, *n), sfft.ToDense(baseline, *n))

	fmt.Printf("signal length n = %d, sparsity k = %d, noise std = %g\n\n", *n, *k, *noise)
	fmt.Printf("%-22s %12s %14s\n", "method", "time", "spectrum error")
	fmt.Printf("%-22s %12s %14.6f\n", algo, sparseTime.Round(time.Microsecond), errSparse)
	fmt.Printf("%-22s %12s %14.6f\n", "full FFT + top-k", fullTime.Round(time.Microsecond), errFull)
	fmt.Printf("\nspeedup: %.2fx\n\n", fullTime.Seconds()/sparseTime.Seconds())

	limit := *show
	if limit > len(recovered) {
		limit = len(recovered)
	}
	fmt.Printf("largest %d recovered coefficients:\n", limit)
	fmt.Printf("%10s %22s %22s\n", "freq", "recovered", "true")
	trueAt := map[int]complex128{}
	for _, c := range truth {
		trueAt[c.Freq] = c.Value
	}
	for _, c := range recovered[:limit] {
		fmt.Printf("%10d %22s %22s\n", c.Freq, fmtC(c.Value), fmtC(trueAt[c.Freq]))
	}
}

func fmtC(v complex128) string {
	return fmt.Sprintf("%.3f%+.3fi", real(v), imag(v))
}

// servedSpectrum posts the signal to a sketchd's /v1/spectrum and converts
// the response back into coefficients. The algo and seed mirror the local
// path, so served and in-process runs recover the same spectrum.
func servedSpectrum(addr string, x []complex128, k int, robust bool, seed uint64) ([]sfft.Coefficient, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	req := server.SpectrumRequest{
		Signal:     make([]float64, len(x)),
		SignalImag: make([]float64, len(x)),
		K:          k,
		Algo:       "exact",
		Seed:       seed,
	}
	if robust {
		req.Algo = "robust"
	}
	for i, v := range x {
		req.Signal[i] = real(v)
		req.SignalImag[i] = imag(v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resp, err := server.NewClient(addr, nil).Spectrum(ctx, req)
	if err != nil {
		return nil, err
	}
	out := make([]sfft.Coefficient, len(resp.Coefficients))
	for i, c := range resp.Coefficients {
		out[i] = sfft.Coefficient{Freq: c.Freq, Value: complex(c.Re, c.Im)}
	}
	return out, nil
}
