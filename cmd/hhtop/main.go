// Command hhtop reports the heavy hitters of a stream of items using a
// Count-Min-backed tracker, and (optionally) compares the sketch's answers
// against exact counts.
//
// Items are read one per line from stdin or from -file; each line is hashed
// to a 64-bit identifier, so any tokens (IP addresses, URLs, words) work.
// With -synthetic N a Zipf-distributed synthetic stream of N items is used
// instead, which makes the command usable as a demo without any input data.
//
// With -workers N the stream runs through the sharded engine: N worker
// goroutines each feed a private replica of the sketch (identical hash
// seeds), and — for synthetic streams — N concurrent producer handles push
// disjoint slices of the stream with no shared locks (file/stdin input uses
// one handle on the reading goroutine). The replicas are merged at the end.
// The Count-Min counters merge exactly (linearity), so every reported
// estimate equals the single-threaded run's; the candidate set is the union
// of the shards' top-k re-scored against the merged counters, which can in
// principle track a slightly different borderline item than the
// single-threaded heap would.
//
// With -push URL the command stops sketching locally and instead streams its
// items into a running sketchd over one persistent connection (framed SKB1
// batches with acks, POST /v1/stream; add -stream-addr to use the daemon's
// raw TCP streaming listener instead). The heavy hitters are then queried
// back from the daemon, so hhtop doubles as a feeder and as a terminal view
// onto a live fleet.
//
// Usage:
//
//	hhtop -phi 0.001 < access.log
//	hhtop -synthetic 1000000 -k 20 -width 4096 -workers 4
//	hhtop -synthetic 1000000 -push http://127.0.0.1:7600 -stream-addr 127.0.0.1:7700
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func main() {
	var (
		k         = flag.Int("k", 20, "number of top items to report")
		phi       = flag.Float64("phi", 0.001, "heavy-hitter threshold as a fraction of the stream length")
		width     = flag.Int("width", 4096, "Count-Min width (counters per row)")
		depth     = flag.Int("depth", 4, "Count-Min depth (rows)")
		file      = flag.String("file", "", "read items from this file instead of stdin")
		synthetic = flag.Int("synthetic", 0, "generate a synthetic Zipf stream of this many items instead of reading input")
		seed      = flag.Uint64("seed", 1, "seed for hashing and synthetic data")
		exact     = flag.Bool("exact", true, "also keep exact counts and report the sketch estimation error")
		workers   = flag.Int("workers", 1, "shard ingestion across this many goroutines (merged exactly at the end)")
		push      = flag.String("push", "", "stream items into the sketchd at this HTTP base URL instead of sketching locally; heavy hitters are queried back from the daemon")
		streamTCP = flag.String("stream-addr", "", "with -push: the daemon's raw TCP streaming address (default: stream through POST /v1/stream on the -push URL)")
		report    = flag.Int("report", 0, "with -push: print an interim top-k report every this many streamed items, re-scored from the daemon in one batch query round-trip (0 disables)")
	)
	flag.Parse()

	if *workers < 1 {
		fmt.Fprintln(os.Stderr, "hhtop: -workers must be >= 1")
		os.Exit(1)
	}
	if *streamTCP != "" && *push == "" {
		fmt.Fprintln(os.Stderr, "hhtop: -stream-addr requires -push (queries go to the HTTP URL)")
		os.Exit(1)
	}
	if *report > 0 && *push == "" {
		fmt.Fprintln(os.Stderr, "hhtop: -report requires -push (interim reports query the daemon)")
		os.Exit(1)
	}

	r := xrand.New(*seed)
	tracker := sketch.NewHeavyHitterTracker(r, *width, *depth, *k)

	// Push mode: one persistent stream connection pins one producer lane on
	// the daemon; local -workers sharding is moot because the sketch lives
	// remotely.
	var su *server.StreamUpdater
	var cli *server.Client
	if *push != "" {
		base := *push
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		cli = server.NewClient(base, nil)
		target := base
		if *streamTCP != "" {
			target = *streamTCP
		}
		var err error
		if su, err = server.DialStream(target, server.StreamConfig{}); err != nil {
			fmt.Fprintf(os.Stderr, "hhtop: dialing stream: %v\n", err)
			os.Exit(1)
		}
	}

	var eng *engine.Engine[*sketch.HeavyHitterTracker]
	if *workers > 1 && su == nil {
		eng = engine.NewTracker(engine.Config{Workers: *workers}, tracker)
	}
	var exactCounter *stream.ExactCounter
	if *exact {
		exactCounter = stream.NewExactCounter()
	}
	names := map[uint64]string{}

	// The read side of push mode: candidate items come back from /v1/topk and
	// are re-scored through ONE batch query round-trip — the querier retains
	// its encode/decode buffers across reports, so a long stream with frequent
	// -report intervals costs one request and no fresh buffers per report,
	// instead of a per-key /v1/query loop.
	var bq *server.BatchQuerier
	var reportKeys []uint64
	if cli != nil {
		bq = cli.BatchQuerier()
	}
	interimReport := func(streamed int) {
		ctx := context.Background()
		cands, err := cli.TopK(ctx, *k)
		if err != nil || len(cands) == 0 {
			return
		}
		reportKeys = reportKeys[:0]
		for _, ic := range cands {
			reportKeys = append(reportKeys, ic.Item)
		}
		ests, gen, err := bq.Query(ctx, reportKeys)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hhtop: interim batch query: %v\n", err)
			return
		}
		show := len(ests)
		if show > 5 {
			show = 5
		}
		line := fmt.Sprintf("hhtop: %d items streamed, top %d at gen %d:", streamed, show, gen)
		for i := 0; i < show; i++ {
			label := names[reportKeys[i]]
			if label == "" {
				label = fmt.Sprintf("item-%d", reportKeys[i])
			}
			line += fmt.Sprintf(" %s=%.0f", truncate(label, 16), ests[i])
		}
		fmt.Fprintln(os.Stderr, line)
	}

	// For file/stdin input the reading goroutine owns one producer handle;
	// synthetic streams below fan across -workers handles instead. Either
	// way items are buffered into key/delta columns and ingested through
	// UpdateBatch/UpdateColumns — the batch-first hot path — rather than one
	// Update call per line.
	var prod *engine.Producer[*sketch.HeavyHitterTracker]
	if eng != nil {
		prod = eng.Producer()
	}
	const ingestChunk = 4096
	batchItems := make([]uint64, 0, ingestChunk)
	batchDeltas := make([]float64, 0, ingestChunk)
	streamed, sinceReport := 0, 0
	flush := func() {
		if len(batchItems) == 0 {
			return
		}
		switch {
		case su != nil:
			if err := su.UpdateColumns(batchItems, batchDeltas); err != nil {
				fmt.Fprintf(os.Stderr, "hhtop: streaming batch: %v\n", err)
				os.Exit(1)
			}
			streamed += len(batchItems)
			sinceReport += len(batchItems)
			if *report > 0 && sinceReport >= *report {
				sinceReport = 0
				interimReport(streamed)
			}
		case prod != nil:
			prod.UpdateColumns(batchItems, batchDeltas)
		default:
			tracker.UpdateBatch(batchItems, batchDeltas)
		}
		if exactCounter != nil {
			for _, id := range batchItems {
				exactCounter.Update(id, 1)
			}
		}
		batchItems = batchItems[:0]
		batchDeltas = batchDeltas[:0]
	}
	process := func(id uint64, label string) {
		batchItems = append(batchItems, id)
		batchDeltas = append(batchDeltas, 1)
		if len(batchItems) >= ingestChunk {
			flush()
		}
		if label != "" {
			names[id] = label
		}
	}

	total := 0
	if *synthetic > 0 {
		s := stream.Zipf(r, 1<<20, *synthetic, 1.1)
		if eng != nil {
			// Concurrent producers: each goroutine takes its own handle,
			// gathers its disjoint slice into columns, and ships them through
			// UpdateColumns — no locks anywhere on the path, and the merge is
			// still exact.
			var wg sync.WaitGroup
			for pid := 0; pid < *workers; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					p := eng.Producer()
					defer p.Close()
					// Stride the worker's disjoint slice directly into one
					// chunk-sized column pair, reused across chunks — constant
					// memory however long the stream (UpdateColumns copies,
					// so reuse is safe).
					chunk := make([]uint64, 0, ingestChunk)
					ones := make([]float64, ingestChunk)
					for i := range ones {
						ones[i] = 1
					}
					for i := pid; i < len(s.Updates); i += *workers {
						chunk = append(chunk, s.Updates[i].Item)
						if len(chunk) == ingestChunk {
							p.UpdateColumns(chunk, ones)
							chunk = chunk[:0]
						}
					}
					p.UpdateColumns(chunk, ones[:len(chunk)])
				}(pid)
			}
			wg.Wait()
			if exactCounter != nil {
				for _, u := range s.Updates {
					exactCounter.Update(u.Item, 1)
				}
			}
			total = len(s.Updates)
		} else {
			for _, u := range s.Updates {
				process(u.Item, "")
				total++
			}
		}
	} else {
		var in io.Reader = os.Stdin
		if *file != "" {
			f, err := os.Open(*file)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hhtop: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			in = f
		}
		scanner := bufio.NewScanner(in)
		scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
		for scanner.Scan() {
			line := scanner.Text()
			if line == "" {
				continue
			}
			process(hashToken(line), line)
			total++
		}
		if err := scanner.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "hhtop: reading input: %v\n", err)
			os.Exit(1)
		}
	}

	flush() // drain the partially filled ingest columns
	if eng != nil {
		prod.Close() // flush the reader-side handle; Close waits for it
		merged, err := eng.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hhtop: merging shards: %v\n", err)
			os.Exit(1)
		}
		tracker = merged
	}

	var hits []stream.ItemCount
	if su != nil {
		// Close syncs: it returns only after the daemon acked every frame as
		// applied, so the query below always sees all our items.
		if err := su.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hhtop: draining stream: %v\n", err)
			os.Exit(1)
		}
		var err error
		if hits, err = cli.HeavyHitters(context.Background(), *phi); err != nil {
			fmt.Fprintf(os.Stderr, "hhtop: querying daemon: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("streamed %d items to %s (session %s)\n", total, *push, su.Session())
		// Re-score the hit set in one batch round-trip, so every printed
		// estimate comes from a single pinned read generation rather than
		// one /v1/query per item.
		if len(hits) > 0 {
			reportKeys = reportKeys[:0]
			for _, ic := range hits {
				reportKeys = append(reportKeys, ic.Item)
			}
			ests, gen, err := bq.Query(context.Background(), reportKeys)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hhtop: batch re-score: %v\n", err)
				os.Exit(1)
			}
			for i := range hits {
				hits[i].Count = int64(ests[i] + 0.5)
			}
			fmt.Printf("%d heavy hitters re-scored in one batch read at generation %d\n", len(hits), gen)
		}
	} else {
		hits = tracker.HeavyHitters(*phi)
		fmt.Printf("processed %d items; sketch uses %d counters (%d KiB)\n",
			total, tracker.SpaceCounters(), tracker.SpaceCounters()*8/1024)
	}
	fmt.Printf("items with estimated frequency >= %.4f of the stream:\n\n", *phi)
	fmt.Printf("%-24s %12s", "item", "estimate")
	if exactCounter != nil {
		fmt.Printf(" %12s %10s", "exact", "overest")
	}
	fmt.Println()
	for _, ic := range hits {
		label := names[ic.Item]
		if label == "" {
			label = fmt.Sprintf("item-%d", ic.Item)
		}
		fmt.Printf("%-24s %12d", truncate(label, 24), ic.Count)
		if exactCounter != nil {
			truth := exactCounter.Count(ic.Item)
			fmt.Printf(" %12d %9.2f%%", truth, 100*float64(ic.Count-truth)/float64(max64(truth, 1)))
		}
		fmt.Println()
	}
}

// hashToken maps an arbitrary string to a 64-bit item identifier (FNV-1a).
func hashToken(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
